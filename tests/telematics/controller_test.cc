#include "telematics/controller.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nextmaint {
namespace telem {
namespace {

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

std::vector<CanFrame> SimulateDay(double working_seconds, uint64_t seed) {
  Rng rng(seed);
  CanDayOptions options;
  options.frequency_hz = 1.0;
  options.working_seconds = working_seconds;
  return SimulateCanDay(options, &rng).ValueOrDie();
}

TEST(SummarizeDayTest, ReportsPreserveTotalWorkingTime) {
  const std::vector<CanFrame> frames = SimulateDay(12'000.0, 1);
  ControllerOptions options;
  options.frequency_hz = 1.0;
  const std::vector<SummaryReport> reports =
      SummarizeDay("v1", Day(0), frames, options).ValueOrDie();
  ASSERT_FALSE(reports.empty());
  double total = 0.0;
  for (const SummaryReport& report : reports) {
    total += report.working_seconds;
    EXPECT_EQ(report.vehicle_id, "v1");
    EXPECT_EQ(report.date, Day(0));
    EXPECT_GE(report.window_start_s, 0.0);
    EXPECT_LE(report.window_end_s, 86'400.0 + options.report_period_s);
  }
  EXPECT_NEAR(total, WorkingSecondsOf(frames, 1.0), 1e-6);
}

TEST(SummarizeDayTest, WindowsAreAligned) {
  const std::vector<CanFrame> frames = SimulateDay(20'000.0, 2);
  ControllerOptions options;
  options.frequency_hz = 1.0;
  options.report_period_s = 3'600.0;
  const auto reports =
      SummarizeDay("v1", Day(0), frames, options).ValueOrDie();
  for (const SummaryReport& report : reports) {
    EXPECT_DOUBLE_EQ(std::fmod(report.window_start_s, 3'600.0), 0.0);
    EXPECT_DOUBLE_EQ(report.window_end_s - report.window_start_s, 3'600.0);
    // Working time within a window cannot exceed the window length.
    EXPECT_LE(report.working_seconds, 3'600.0 + 1.0);
  }
}

TEST(SummarizeDayTest, EmptyFrameStreamYieldsNoReports) {
  EXPECT_TRUE(SummarizeDay("v1", Day(0), {}, ControllerOptions())
                  .ValueOrDie()
                  .empty());
}

TEST(SummarizeDayTest, RejectsOutOfOrderFrames) {
  std::vector<CanFrame> frames(2);
  frames[0].timestamp_ms = 5'000;
  frames[1].timestamp_ms = 1'000;
  EXPECT_EQ(SummarizeDay("v1", Day(0), frames, ControllerOptions())
                .status()
                .code(),
            StatusCode::kDataError);
}

TEST(SummarizeDayTest, RejectsBadOptions) {
  ControllerOptions options;
  options.report_period_s = 0.0;
  EXPECT_FALSE(SummarizeDay("v1", Day(0), {}, options).ok());
  options.report_period_s = 3'600.0;
  options.frequency_hz = 0.0;
  EXPECT_FALSE(SummarizeDay("v1", Day(0), {}, options).ok());
}

TEST(SummarizeDayTest, TelemetryStatisticsAreSane) {
  const std::vector<CanFrame> frames = SimulateDay(15'000.0, 3);
  ControllerOptions options;
  options.frequency_hz = 1.0;
  const auto reports =
      SummarizeDay("v1", Day(0), frames, options).ValueOrDie();
  for (const SummaryReport& report : reports) {
    if (report.working_seconds == 0.0) continue;
    EXPECT_GT(report.mean_engine_rpm, 1'000.0);
    EXPECT_LT(report.mean_engine_rpm, 3'000.0);
    EXPECT_GT(report.max_coolant_temp_c, 0.0);
    EXPECT_LT(report.min_oil_pressure_kpa, 1'000.0);
    EXPECT_GT(report.message_count, 0u);
  }
}

TEST(ReportCollectorTest, DailyUtilizationAggregatesAcrossDays) {
  ReportCollector collector;
  ControllerOptions options;
  options.frequency_hz = 1.0;
  const double targets[] = {10'000.0, 0.0, 20'000.0};
  for (int day = 0; day < 3; ++day) {
    const auto frames = SimulateDay(targets[day], 10 + day);
    collector.Ingest(
        SummarizeDay("v1", Day(day), frames, options).ValueOrDie());
  }
  const data::DailySeries series =
      collector.DailyUtilization("v1").ValueOrDie();
  // Day 1 had no frames, hence no reports: it shows as NaN inside the
  // observed range only if bracketed; here days 0 and 2 bracket it.
  ASSERT_EQ(series.size(), 3u);
  EXPECT_NEAR(series[0], 10'000.0, 10.0);
  EXPECT_TRUE(std::isnan(series[1]));
  EXPECT_NEAR(series[2], 20'000.0, 10.0);
}

TEST(ReportCollectorTest, TracksMultipleVehicles) {
  ReportCollector collector;
  ControllerOptions options;
  options.frequency_hz = 1.0;
  collector.Ingest(SummarizeDay("v2", Day(0), SimulateDay(5'000.0, 20),
                                options)
                       .ValueOrDie());
  collector.Ingest(SummarizeDay("v1", Day(0), SimulateDay(6'000.0, 21),
                                options)
                       .ValueOrDie());
  EXPECT_EQ(collector.VehicleIds(),
            (std::vector<std::string>{"v1", "v2"}));
  EXPECT_TRUE(collector.DailyUtilization("v1").ok());
  EXPECT_TRUE(collector.DailyUtilization("v2").ok());
  EXPECT_FALSE(collector.DailyUtilization("v3").ok());
}

TEST(ReportCollectorTest, ReportsTableHasExpectedSchema) {
  ReportCollector collector;
  ControllerOptions options;
  options.frequency_hz = 1.0;
  collector.Ingest(SummarizeDay("v1", Day(0), SimulateDay(4'000.0, 30),
                                options)
                       .ValueOrDie());
  const data::Table table = collector.ReportsTable("v1").ValueOrDie();
  EXPECT_EQ(table.ColumnNames(),
            (std::vector<std::string>{"date", "window_start_s",
                                      "working_seconds", "mean_engine_rpm",
                                      "max_coolant_temp_c",
                                      "min_oil_pressure_kpa",
                                      "message_count"}));
  EXPECT_GT(table.num_rows(), 0u);
}

}  // namespace
}  // namespace telem
}  // namespace nextmaint
