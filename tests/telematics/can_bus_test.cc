#include "telematics/can_bus.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nextmaint {
namespace telem {
namespace {

TEST(SimulateCanDayTest, WorkingTimeMatchesTarget) {
  Rng rng(1);
  CanDayOptions options;
  options.frequency_hz = 1.0;  // 1 Hz keeps the test fast
  options.working_seconds = 14'400.0;  // 4 hours
  const std::vector<CanFrame> frames =
      SimulateCanDay(options, &rng).ValueOrDie();
  EXPECT_NEAR(WorkingSecondsOf(frames, options.frequency_hz),
              options.working_seconds, 5.0);
}

TEST(SimulateCanDayTest, ZeroUsageDayHasNoFrames) {
  Rng rng(2);
  CanDayOptions options;
  options.frequency_hz = 1.0;
  options.working_seconds = 0.0;
  EXPECT_TRUE(SimulateCanDay(options, &rng).ValueOrDie().empty());
}

TEST(SimulateCanDayTest, FullDaySaturates) {
  Rng rng(3);
  CanDayOptions options;
  options.frequency_hz = 0.1;  // tick = 10 s
  options.working_seconds = 86'400.0;
  const std::vector<CanFrame> frames =
      SimulateCanDay(options, &rng).ValueOrDie();
  EXPECT_NEAR(WorkingSecondsOf(frames, options.frequency_hz), 86'400.0,
              100.0);
}

TEST(SimulateCanDayTest, FramesAreTimeOrderedWithinDay) {
  Rng rng(4);
  CanDayOptions options;
  options.frequency_hz = 1.0;
  options.working_seconds = 7'200.0;
  const std::vector<CanFrame> frames =
      SimulateCanDay(options, &rng).ValueOrDie();
  ASSERT_FALSE(frames.empty());
  for (size_t i = 1; i < frames.size(); ++i) {
    EXPECT_GE(frames[i].timestamp_ms, frames[i - 1].timestamp_ms);
  }
  EXPECT_GE(frames.front().timestamp_ms, 0);
  EXPECT_LT(frames.back().timestamp_ms, 86'400'000);
}

TEST(SimulateCanDayTest, SignalsFollowWorkingRegime) {
  Rng rng(5);
  CanDayOptions options;
  options.frequency_hz = 1.0;
  options.working_seconds = 10'000.0;
  const std::vector<CanFrame> frames =
      SimulateCanDay(options, &rng).ValueOrDie();
  ASSERT_FALSE(frames.empty());
  double rpm_sum = 0.0;
  for (const CanFrame& frame : frames) {
    EXPECT_TRUE(frame.working);
    rpm_sum += frame.engine_speed_rpm;
    EXPECT_GT(frame.oil_pressure_kpa, 100.0);
  }
  // Mean working rpm close to the configured 1900.
  EXPECT_NEAR(rpm_sum / static_cast<double>(frames.size()),
              options.sensors.working_rpm_mean, 50.0);
}

TEST(SimulateCanDayTest, TemperatureRisesUnderLoad) {
  Rng rng(6);
  CanDayOptions options;
  options.frequency_hz = 1.0;
  options.working_seconds = 20'000.0;
  options.mean_bout_seconds = 20'000.0;  // one long bout
  const std::vector<CanFrame> frames =
      SimulateCanDay(options, &rng).ValueOrDie();
  ASSERT_GT(frames.size(), 100u);
  EXPECT_GT(frames.back().coolant_temp_c, frames.front().coolant_temp_c);
  EXPECT_LE(frames.back().coolant_temp_c, options.sensors.working_temp_c);
}

TEST(SimulateCanDayTest, InvalidOptionsRejected) {
  Rng rng(7);
  CanDayOptions options;
  options.frequency_hz = 0.0;
  EXPECT_FALSE(SimulateCanDay(options, &rng).ok());
  options.frequency_hz = 1.0;
  options.working_seconds = -1.0;
  EXPECT_FALSE(SimulateCanDay(options, &rng).ok());
  options.working_seconds = 90'000.0;
  EXPECT_FALSE(SimulateCanDay(options, &rng).ok());
  options.working_seconds = 100.0;
  options.mean_bout_seconds = 0.0;
  EXPECT_FALSE(SimulateCanDay(options, &rng).ok());
}

TEST(SimulateCanDayTest, DeterministicGivenSeed) {
  CanDayOptions options;
  options.frequency_hz = 1.0;
  options.working_seconds = 5'000.0;
  Rng rng_a(42), rng_b(42);
  const auto a = SimulateCanDay(options, &rng_a).ValueOrDie();
  const auto b = SimulateCanDay(options, &rng_b).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp_ms, b[i].timestamp_ms);
    EXPECT_DOUBLE_EQ(a[i].engine_speed_rpm, b[i].engine_speed_rpm);
  }
}

}  // namespace
}  // namespace telem
}  // namespace nextmaint
