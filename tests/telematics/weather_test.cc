#include "telematics/weather.h"

#include <gtest/gtest.h>

#include <cmath>

#include "telematics/fleet.h"

namespace nextmaint {
namespace telem {
namespace {

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

TEST(WorkabilityTest, FairWeatherIsFullyWorkable) {
  WeatherDay day;
  day.temperature_c = 18.0;
  day.precipitation_mm = 0.0;
  EXPECT_DOUBLE_EQ(day.WorkabilityFactor(), 1.0);
  day.precipitation_mm = 1.5;  // drizzle
  EXPECT_DOUBLE_EQ(day.WorkabilityFactor(), 1.0);
}

TEST(WorkabilityTest, HeavyRainShutsSitesDown) {
  WeatherDay day;
  day.temperature_c = 15.0;
  day.precipitation_mm = 25.0;
  EXPECT_LT(day.WorkabilityFactor(), 0.05);
  day.precipitation_mm = 10.0;
  EXPECT_GT(day.WorkabilityFactor(), 0.3);
  EXPECT_LT(day.WorkabilityFactor(), 0.9);
}

TEST(WorkabilityTest, FrostDegradesWork) {
  WeatherDay day;
  day.precipitation_mm = 0.0;
  day.temperature_c = -5.0;
  EXPECT_LT(day.WorkabilityFactor(), 1.0);
  EXPECT_GT(day.WorkabilityFactor(), 0.4);
  day.temperature_c = -20.0;
  EXPECT_DOUBLE_EQ(day.WorkabilityFactor(), 0.0);
}

TEST(WorkabilityTest, AlwaysInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    WeatherDay day;
    day.temperature_c = rng.Uniform(-40, 45);
    day.precipitation_mm = rng.Uniform(0, 80);
    const double factor = day.WorkabilityFactor();
    EXPECT_GE(factor, 0.0);
    EXPECT_LE(factor, 1.0);
  }
}

TEST(WeatherModelTest, ValidatesRanges) {
  WeatherModel model;
  EXPECT_TRUE(model.Validate().ok());
  model.temperature_persistence = 1.0;
  EXPECT_FALSE(model.Validate().ok());
  model = WeatherModel();
  model.wet_probability = 1.2;
  EXPECT_FALSE(model.Validate().ok());
  model = WeatherModel();
  model.wet_probability = 0.8;
  model.wet_persistence_boost = 0.3;  // P(wet|wet) would exceed 1
  EXPECT_FALSE(model.Validate().ok());
  model = WeatherModel();
  model.mean_rain_mm = 0.0;
  EXPECT_FALSE(model.Validate().ok());
}

TEST(SimulateWeatherTest, DeterministicAndSized) {
  WeatherModel model;
  Rng rng_a(5), rng_b(5);
  const WeatherSeries a =
      SimulateWeather(model, Day(0), 365, &rng_a).ValueOrDie();
  const WeatherSeries b =
      SimulateWeather(model, Day(0), 365, &rng_b).ValueOrDie();
  ASSERT_EQ(a.size(), 365u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].temperature_c, b[i].temperature_c);
    EXPECT_DOUBLE_EQ(a[i].precipitation_mm, b[i].precipitation_mm);
  }
}

TEST(SimulateWeatherTest, SummerWarmerThanWinter) {
  WeatherModel model;
  Rng rng(7);
  const WeatherSeries series =
      SimulateWeather(model, Day(0), 365, &rng).ValueOrDie();
  // Mean July temperature clearly above mean January temperature.
  double january = 0.0, july = 0.0;
  for (int d = 0; d < 31; ++d) january += series[static_cast<size_t>(d)].temperature_c;
  for (int d = 181; d < 212; ++d) july += series[static_cast<size_t>(d)].temperature_c;
  EXPECT_GT(july / 31.0, january / 31.0 + 10.0);
}

TEST(SimulateWeatherTest, WetFractionNearConfigured) {
  WeatherModel model;
  model.wet_persistence_boost = 0.0;  // no clustering: easy expectation
  model.wet_probability = 0.3;
  Rng rng(9);
  const WeatherSeries series =
      SimulateWeather(model, Day(0), 4000, &rng).ValueOrDie();
  size_t wet = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    if (series[i].precipitation_mm > 0.0) ++wet;
  }
  // Seasonal shift averages out over full years.
  EXPECT_NEAR(static_cast<double>(wet) / 4000.0, 0.3, 0.03);
}

TEST(SimulateWeatherTest, WetDaysCluster) {
  WeatherModel model;  // persistence boost 0.35 by default
  Rng rng(11);
  const WeatherSeries series =
      SimulateWeather(model, Day(0), 4000, &rng).ValueOrDie();
  size_t wet = 0, wet_after_wet = 0, wet_yesterday = 0;
  for (size_t i = 1; i < series.size(); ++i) {
    const bool today = series[i].precipitation_mm > 0.0;
    const bool yesterday = series[i - 1].precipitation_mm > 0.0;
    if (today) ++wet;
    if (yesterday) {
      ++wet_yesterday;
      if (today) ++wet_after_wet;
    }
  }
  const double p_wet = static_cast<double>(wet) / 4000.0;
  const double p_wet_given_wet =
      static_cast<double>(wet_after_wet) / static_cast<double>(wet_yesterday);
  EXPECT_GT(p_wet_given_wet, p_wet + 0.15);
}

TEST(SimulateWeatherTest, ErrorCases) {
  WeatherModel model;
  Rng rng(13);
  EXPECT_FALSE(SimulateWeather(model, Day(0), 0, &rng).ok());
  model.mean_rain_mm = -1.0;
  EXPECT_FALSE(SimulateWeather(model, Day(0), 10, &rng).ok());
}

TEST(WeatherCoupledFleetTest, SuppressesUsage) {
  FleetOptions options;
  options.num_vehicles = 4;
  options.num_days = 700;
  options.start_date = Day(0);
  options.seed = 77;

  const Fleet dry = telem::SimulateFleet(options).ValueOrDie();
  options.with_weather = true;
  options.weather.wet_probability = 0.45;
  options.weather.mean_rain_mm = 14.0;
  const Fleet wet = telem::SimulateFleet(options).ValueOrDie();

  ASSERT_EQ(wet.weather.size(), 700u);
  EXPECT_TRUE(dry.weather.days.empty());
  // Same seeds, but rain/frost scale usage down on average.
  double dry_total = 0.0, wet_total = 0.0;
  for (size_t v = 0; v < dry.vehicles.size(); ++v) {
    dry_total += dry.vehicles[v].utilization.Sum();
    wet_total += wet.vehicles[v].utilization.Sum();
  }
  EXPECT_LT(wet_total, dry_total);
}

TEST(WeatherCoupledFleetTest, WeatherMustCoverPeriod) {
  Rng rng(15);
  VehicleProfile profile = DefaultFleetProfiles(1, &rng)[0];
  WeatherSeries shorty;
  shorty.start_date = Day(0);
  shorty.days.resize(10);
  Rng sim_rng(16);
  EXPECT_FALSE(
      SimulateVehicle(profile, Day(0), 100, 0.0, &sim_rng, &shorty).ok());
}

}  // namespace
}  // namespace telem
}  // namespace nextmaint
