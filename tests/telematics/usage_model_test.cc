#include "telematics/usage_model.h"

#include <gtest/gtest.h>

#include <map>

namespace nextmaint {
namespace telem {
namespace {

Date Monday() { return Date::FromYmd(2015, 1, 5).ValueOrDie(); }

VehicleProfile BasicProfile() {
  VehicleProfile profile;
  profile.id = "test";
  profile.weekend_work_prob = 1.0;   // disable the weekend gate
  profile.seasonal_amplitude = 0.0;  // disable seasonality
  return profile;
}

TEST(ProfileValidateTest, AcceptsDefaults) {
  EXPECT_TRUE(BasicProfile().Validate().ok());
}

TEST(ProfileValidateTest, RejectsBadValues) {
  {
    VehicleProfile p = BasicProfile();
    p.id = "";
    EXPECT_FALSE(p.Validate().ok());
  }
  {
    VehicleProfile p = BasicProfile();
    p.idle_persistence = 1.5;
    EXPECT_FALSE(p.Validate().ok());
  }
  {
    VehicleProfile p = BasicProfile();
    p.maintenance_interval_s = 0.0;
    EXPECT_FALSE(p.Validate().ok());
  }
  {
    VehicleProfile p = BasicProfile();
    p.heavy_mean_s = -1.0;
    EXPECT_FALSE(p.Validate().ok());
  }
  {
    VehicleProfile p = BasicProfile();
    p.first_cycle_factor = 0.0;
    EXPECT_FALSE(p.Validate().ok());
  }
  {
    VehicleProfile p = BasicProfile();
    p.first_cycle_ramp_end = 1.5;
    EXPECT_FALSE(p.Validate().ok());
  }
  {
    VehicleProfile p = BasicProfile();
    p.seasonal_amplitude = 2.0;
    EXPECT_FALSE(p.Validate().ok());
  }
}

TEST(NextRegimeTest, PersistenceControlsRunLengths) {
  VehicleProfile profile = BasicProfile();
  profile.idle_persistence = 0.95;
  Rng rng(1);
  // Measure the empirical mean idle-run length: should be near
  // 1 / (1 - persistence) = 20.
  int runs = 0, idle_days = 0;
  UsageRegime regime = UsageRegime::kIdle;
  bool in_run = true;
  for (int i = 0; i < 200'000; ++i) {
    regime = NextRegime(profile, regime, &rng);
    if (regime == UsageRegime::kIdle) {
      ++idle_days;
      if (!in_run) {
        in_run = true;
        ++runs;
      }
    } else {
      in_run = false;
    }
  }
  ASSERT_GT(runs, 100);
  const double mean_run = static_cast<double>(idle_days) / (runs + 1);
  EXPECT_NEAR(mean_run, 20.0, 3.0);
}

TEST(NextRegimeTest, HeavyShareControlsWorkingMix) {
  VehicleProfile profile = BasicProfile();
  profile.idle_persistence = 0.0;   // leave idle immediately
  profile.work_persistence = 0.0;   // re-draw regime daily
  profile.heavy_share = 0.8;
  Rng rng(2);
  std::map<UsageRegime, int> counts;
  UsageRegime regime = UsageRegime::kIdle;
  for (int i = 0; i < 100'000; ++i) {
    regime = NextRegime(profile, regime, &rng);
    ++counts[regime];
  }
  const double heavy = counts[UsageRegime::kHeavy];
  const double light = counts[UsageRegime::kLight];
  EXPECT_NEAR(heavy / (heavy + light), 0.8, 0.02);
}

TEST(SimulateUsageDayTest, ValuesAreClampedToDay) {
  VehicleProfile profile = BasicProfile();
  profile.heavy_mean_s = 80'000.0;
  profile.heavy_stddev_s = 30'000.0;
  Rng rng(3);
  UsageState state;
  state.in_first_cycle = false;
  for (int i = 0; i < 2'000; ++i) {
    const double seconds =
        SimulateUsageDay(profile, Monday().AddDays(i), &state, &rng);
    EXPECT_GE(seconds, 0.0);
    EXPECT_LE(seconds, 86'400.0);
  }
}

TEST(SimulateUsageDayTest, RegimeMeansRoughlyRespected) {
  VehicleProfile profile = BasicProfile();
  profile.idle_persistence = 0.0;
  profile.work_persistence = 1.0;  // lock into the first working regime
  profile.heavy_share = 1.0;       // always heavy
  Rng rng(4);
  UsageState state;
  state.in_first_cycle = false;
  double sum = 0.0;
  const int n = 20'000;
  int weekdays = 0;
  for (int i = 0; i < n; ++i) {
    const Date date = Monday().AddDays(i);
    if (date.IsWeekend()) continue;  // weekend gate disabled but skip anyway
    sum += SimulateUsageDay(profile, date, &state, &rng);
    ++weekdays;
  }
  EXPECT_NEAR(sum / weekdays, profile.heavy_mean_s, 500.0);
}

TEST(SimulateUsageDayTest, WeekendGateZeroesWeekends) {
  VehicleProfile profile = BasicProfile();
  profile.weekend_work_prob = 0.0;
  profile.idle_persistence = 0.0;
  profile.heavy_share = 1.0;
  Rng rng(5);
  UsageState state;
  state.in_first_cycle = false;
  const Date saturday = Date::FromYmd(2015, 1, 3).ValueOrDie();
  for (int week = 0; week < 50; ++week) {
    EXPECT_DOUBLE_EQ(
        SimulateUsageDay(profile, saturday.AddDays(7 * week), &state, &rng),
        0.0);
  }
}

TEST(SimulateUsageDayTest, FirstCycleRampScalesUsage) {
  VehicleProfile profile = BasicProfile();
  profile.idle_persistence = 0.0;
  profile.work_persistence = 1.0;
  profile.heavy_share = 1.0;
  profile.heavy_stddev_s = 1.0;  // nearly deterministic
  profile.first_cycle_factor = 0.5;
  profile.first_cycle_ramp_end = 0.8;

  auto mean_usage = [&](double progress, bool first_cycle) {
    Rng rng(6);
    UsageState state;
    state.in_first_cycle = first_cycle;
    state.first_cycle_progress = progress;
    double sum = 0.0;
    int days = 0;
    for (int i = 0; i < 500; ++i) {
      const Date date = Monday().AddDays(i);
      if (date.IsWeekend()) continue;
      state.first_cycle_progress = progress;  // hold progress fixed
      sum += SimulateUsageDay(profile, date, &state, &rng);
      ++days;
    }
    return sum / days;
  };

  const double at_start = mean_usage(0.0, true);
  const double mid_ramp = mean_usage(0.4, true);
  const double after_ramp = mean_usage(0.9, true);
  const double steady = mean_usage(0.0, false);

  EXPECT_NEAR(at_start / steady, 0.5, 0.02);
  EXPECT_GT(mid_ramp, at_start);
  EXPECT_LT(mid_ramp, after_ramp);
  EXPECT_NEAR(after_ramp, steady, steady * 0.02);
}

TEST(SimulateUsageDayTest, SeasonalityModulatesAmplitude) {
  VehicleProfile profile = BasicProfile();
  profile.idle_persistence = 0.0;
  profile.work_persistence = 1.0;
  profile.heavy_share = 1.0;
  profile.heavy_stddev_s = 1.0;
  profile.seasonal_amplitude = 0.5;
  profile.seasonal_phase = 0.25;  // peak mid-year

  auto usage_on = [&](Date date) {
    Rng rng(7);
    UsageState state;
    state.in_first_cycle = false;
    double sum = 0.0;
    for (int i = 0; i < 200; ++i) {
      sum += SimulateUsageDay(profile, date, &state, &rng);
    }
    return sum / 200.0;
  };

  // With phase 0.25 the sinusoid peaks near the start of the year
  // (sin(2*pi*(doy/365 + 0.25)) = 1 at doy ~ 0) and troughs mid-year.
  const double january = usage_on(Date::FromYmd(2016, 1, 4).ValueOrDie());
  const double july = usage_on(Date::FromYmd(2016, 7, 4).ValueOrDie());
  EXPECT_GT(january, july * 1.5);
}

}  // namespace
}  // namespace telem
}  // namespace nextmaint
