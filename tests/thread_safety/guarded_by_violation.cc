// Negative compile fixture for the Clang thread-safety build
// (docs/static-analysis.md#thread-safety-analysis): reading a GUARDED_BY
// member without holding its mutex MUST fail under
// -Wthread-safety -Werror=thread-safety. The ThreadSafetyNegativeCompile
// ctest builds this target and asserts the build FAILS (WILL_FAIL), so a
// regression that silently disarms the analysis — a broken macro
// definition, a dropped compiler flag — turns the suite red.
//
// This target is EXCLUDE_FROM_ALL: it must never link into the real build.

#include "common/thread_annotations.h"

namespace {

struct Account {
  nextmaint::Mutex mu;
  long balance GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Account account;
  // BUG (deliberate): no MutexLock — the analysis must reject this read.
  return account.balance == 0 ? 0 : 1;
}
