// End-to-end integration tests spanning every layer:
//   CAN frames -> on-board controller -> cloud collector -> preparation
//   pipeline -> derived series -> model training -> scheduler forecasts.

#include <gtest/gtest.h>

#include <cmath>

#include "nextmaint.h"

namespace nextmaint {
namespace {

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

// The message-level path and the fast statistical path must agree: a day
// simulated as frames and summarized by the controller yields the same
// daily utilization the generator targeted.
TEST(IntegrationTest, MessagePathMatchesStatisticalPath) {
  Rng rng(1);
  telem::ControllerOptions controller_options;
  controller_options.frequency_hz = 2.0;
  telem::ReportCollector collector;

  // Target utilizations drawn from the usage model.
  telem::VehicleProfile profile = telem::DefaultFleetProfiles(1, &rng)[0];
  telem::UsageState state;
  state.in_first_cycle = false;
  state.regime = telem::UsageRegime::kHeavy;  // guarantee traffic on day 0
  std::vector<double> targets;
  for (int day = 0; day < 5; ++day) {
    targets.push_back(
        telem::SimulateUsageDay(profile, Day(day), &state, &rng));
  }
  targets[0] = std::max(targets[0], 10'000.0);

  for (int day = 0; day < 5; ++day) {
    telem::CanDayOptions can_options;
    can_options.frequency_hz = controller_options.frequency_hz;
    can_options.working_seconds = targets[static_cast<size_t>(day)];
    const auto frames = telem::SimulateCanDay(can_options, &rng).ValueOrDie();
    collector.Ingest(telem::SummarizeDay("v1", Day(day), frames,
                                         controller_options)
                         .ValueOrDie());
  }

  data::DailySeries series = collector.DailyUtilization("v1").ValueOrDie();
  data::Clean(&series);  // days with zero target produce no reports
  ASSERT_EQ(series.end_date(), Day(4));
  // The collector range starts at the first day with traffic.
  const size_t offset = static_cast<size_t>(
      series.start_date().DaysSince(Day(0)));
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_NEAR(series[i], targets[i + offset], 5.0) << "day " << i;
  }
}

// Full pipeline from raw reports to a trained model whose near-deadline
// error beats the baseline.
TEST(IntegrationTest, ReportsToTrainedModel) {
  const double t_v = 500'000.0;
  Rng rng(7);
  // The light-duty archetype mixes regimes with a wide rate gap, which is
  // where the trained models separate most clearly from BL. (Across the
  // whole fleet the separation is asserted by the Table 1 bench.)
  telem::VehicleProfile profile = telem::DefaultFleetProfiles(5, &rng)[3];
  profile.maintenance_interval_s = t_v;
  Rng sim_rng(8);
  const telem::VehicleHistory history =
      telem::SimulateVehicle(profile, Day(0), 800, /*missing=*/0.02,
                             &sim_rng)
          .ValueOrDie();

  // Preparation: clean the telemetry outages.
  data::DailySeries series = history.utilization;
  ASSERT_GT(series.MissingCount(), 0u);
  data::Clean(&series, data::MissingValuePolicy::kZero);
  ASSERT_TRUE(series.IsComplete());

  core::OldVehicleOptions options;
  options.window = 6;
  options.train_on_last29_only = true;
  options.tune = false;
  options.resampling_shifts = 2;

  const core::VehicleEvaluation rf =
      core::EvaluateAlgorithmOnVehicle("RF", series, t_v, options)
          .ValueOrDie();
  const core::VehicleEvaluation bl =
      core::EvaluateAlgorithmOnVehicle("BL", series, t_v, options)
          .ValueOrDie();
  EXPECT_LT(rf.emre, bl.emre);
  EXPECT_LT(rf.emre, 15.0);
}

// CSV round trip: exporting a vehicle's prepared series and reloading it
// reproduces identical model inputs.
TEST(IntegrationTest, CsvRoundTripPreservesPipeline) {
  const double t_v = 300.0;
  data::DailySeries series(Day(0), std::vector<double>(30, 100.0));
  const data::Table table =
      data::SeriesToTable(series, "usage").ValueOrDie();
  const std::string path = testing::TempDir() + "/nextmaint_integration.csv";
  ASSERT_TRUE(data::WriteCsvFile(table, path).ok());
  const data::Table reloaded = data::ReadCsvFile(path).ValueOrDie();
  std::remove(path.c_str());
  data::DailySeries rebuilt =
      data::AggregateDaily(reloaded, "date", "usage").ValueOrDie();
  data::Clean(&rebuilt);

  const core::VehicleSeries a = core::DeriveSeries(series, t_v).ValueOrDie();
  const core::VehicleSeries b =
      core::DeriveSeries(rebuilt, t_v).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    EXPECT_DOUBLE_EQ(a.l[t], b.l[t]);
    if (a.HasTarget(t)) {
      EXPECT_DOUBLE_EQ(a.d[t], b.d[t]);
    }
  }
}

// Whole-fleet scheduling through the deployed-system facade.
TEST(IntegrationTest, FleetToForecasts) {
  telem::FleetOptions fleet_options;
  fleet_options.num_vehicles = 4;
  fleet_options.num_days = 700;
  fleet_options.maintenance_interval_s = 500'000.0;
  fleet_options.start_date = Day(0);
  fleet_options.seed = 5;
  const telem::Fleet fleet =
      telem::SimulateFleet(fleet_options).ValueOrDie();

  core::SchedulerOptions options;
  options.maintenance_interval_s = fleet_options.maintenance_interval_s;
  options.window = 4;
  options.algorithms = {"BL", "RF"};
  options.selection.tune = false;
  core::FleetScheduler scheduler(options);
  for (const auto& vehicle : fleet.vehicles) {
    ASSERT_TRUE(
        scheduler.RegisterVehicle(vehicle.profile.id, fleet.start_date)
            .ok());
    ASSERT_TRUE(
        scheduler.IngestSeries(vehicle.profile.id, vehicle.utilization)
            .ok());
  }
  ASSERT_TRUE(scheduler.TrainAll().ok());
  const auto forecasts = scheduler.FleetForecast().ValueOrDie();
  EXPECT_EQ(forecasts.size(), fleet.vehicles.size());
  for (const auto& forecast : forecasts) {
    // Every simulated vehicle has years of history: all should be old and
    // carry a per-vehicle model.
    EXPECT_EQ(forecast.category, core::VehicleCategory::kOld);
    EXPECT_GE(forecast.days_left, 0.0);
    EXPECT_LT(forecast.days_left, 500.0);
  }
}

// Forecast sanity: a perfectly regular vehicle's predicted days-left must
// equal the arithmetic answer.
TEST(IntegrationTest, RegularVehicleForecastIsExact) {
  const double t_v = 1000.0;
  core::SchedulerOptions options;
  options.maintenance_interval_s = t_v;
  options.window = 2;
  options.algorithms = {"LR"};
  options.selection.tune = false;
  core::FleetScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterVehicle("v", Day(0)).ok());
  // 100 s/day, T = 1000: 10-day cycles. After 95 days, 9.5 cycles have
  // elapsed; 500 s remain -> 5 days.
  ASSERT_TRUE(scheduler
                  .IngestSeries("v", data::DailySeries(
                                         Day(0),
                                         std::vector<double>(95, 100.0)))
                  .ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  const core::MaintenanceForecast forecast =
      scheduler.Forecast("v").ValueOrDie();
  EXPECT_DOUBLE_EQ(forecast.usage_seconds_left, 500.0);
  EXPECT_NEAR(forecast.days_left, 5.0, 1.5);
}

}  // namespace
}  // namespace nextmaint
