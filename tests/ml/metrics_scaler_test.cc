// Tests for regression metrics and feature scalers.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.h"
#include "ml/scaler.h"

namespace nextmaint {
namespace ml {
namespace {

TEST(MetricsTest, MseBasics) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1, 2, 3}, {1, 2, 3}).ValueOrDie(), 0.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({0, 0}, {3, 4}).ValueOrDie(), 12.5);
}

TEST(MetricsTest, RmseIsSqrtOfMse) {
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({0, 0}, {3, 4}).ValueOrDie(),
                   std::sqrt(12.5));
}

TEST(MetricsTest, MaeBasics) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2}, {2, 0}).ValueOrDie(), 1.5);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({-1}, {1}).ValueOrDie(), 2.0);
}

TEST(MetricsTest, R2PerfectAndBaseline) {
  EXPECT_DOUBLE_EQ(R2Score({1, 2, 3}, {1, 2, 3}).ValueOrDie(), 1.0);
  // Predicting the mean gives R^2 = 0.
  EXPECT_DOUBLE_EQ(R2Score({1, 2, 3}, {2, 2, 2}).ValueOrDie(), 0.0);
  // Worse than the mean gives negative R^2.
  EXPECT_LT(R2Score({1, 2, 3}, {3, 2, 1}).ValueOrDie(), 0.0);
}

TEST(MetricsTest, R2UndefinedForConstantTruth) {
  EXPECT_EQ(R2Score({5, 5, 5}, {5, 5, 5}).status().code(),
            StatusCode::kNumericError);
}

TEST(MetricsTest, ErrorOnShapeProblems) {
  EXPECT_FALSE(MeanSquaredError({1, 2}, {1}).ok());
  EXPECT_FALSE(MeanAbsoluteError({}, {}).ok());
  EXPECT_FALSE(R2Score({1}, {1, 2}).ok());
}

TEST(MinMaxScalerTest, ScalesColumnsIndependently) {
  const Matrix x = Matrix::FromRows({{0, 100}, {5, 200}, {10, 300}});
  MinMaxScaler scaler;
  const Matrix scaled = scaler.FitTransform(x).ValueOrDie();
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(scaled(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(scaled(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(scaled(2, 1), 1.0);
}

TEST(MinMaxScalerTest, TransformUsesTrainingRange) {
  const Matrix train = Matrix::FromRows({{0.0}, {10.0}});
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(train).ok());
  const Matrix test = Matrix::FromRows({{20.0}});
  EXPECT_DOUBLE_EQ(scaler.Transform(test).ValueOrDie()(0, 0), 2.0);
}

TEST(MinMaxScalerTest, ConstantColumnMapsToZero) {
  const Matrix x = Matrix::FromRows({{7.0}, {7.0}});
  MinMaxScaler scaler;
  const Matrix scaled = scaler.FitTransform(x).ValueOrDie();
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled(1, 0), 0.0);
}

TEST(MinMaxScalerTest, InverseTransform) {
  const Matrix x = Matrix::FromRows({{2.0}, {12.0}});
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(x).ok());
  EXPECT_DOUBLE_EQ(scaler.InverseTransform(0, 0.5).ValueOrDie(), 7.0);
  EXPECT_FALSE(scaler.InverseTransform(3, 0.5).ok());
}

TEST(MinMaxScalerTest, ErrorPaths) {
  MinMaxScaler scaler;
  EXPECT_FALSE(scaler.Fit(Matrix()).ok());
  EXPECT_FALSE(scaler.Transform(Matrix::FromRows({{1.0}})).ok());
  ASSERT_TRUE(scaler.Fit(Matrix::FromRows({{1.0}, {2.0}})).ok());
  EXPECT_FALSE(scaler.Transform(Matrix::FromRows({{1.0, 2.0}})).ok());
}

TEST(StandardScalerTest, ZeroMeanUnitVariance) {
  const Matrix x = Matrix::FromRows({{1.0}, {2.0}, {3.0}, {4.0}});
  StandardScaler scaler;
  const Matrix scaled = scaler.FitTransform(x).ValueOrDie();
  double mean = 0.0, var = 0.0;
  for (size_t r = 0; r < 4; ++r) mean += scaled(r, 0);
  mean /= 4.0;
  for (size_t r = 0; r < 4; ++r) {
    var += (scaled(r, 0) - mean) * (scaled(r, 0) - mean);
  }
  var /= 4.0;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
}

TEST(StandardScalerTest, ConstantColumnShiftsOnly) {
  const Matrix x = Matrix::FromRows({{5.0}, {5.0}});
  StandardScaler scaler;
  const Matrix scaled = scaler.FitTransform(x).ValueOrDie();
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaler.stds()[0], 1.0);
}

TEST(StandardScalerTest, TransformAppliesTrainingStats) {
  const Matrix train = Matrix::FromRows({{0.0}, {2.0}});  // mean 1, std 1
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(train).ok());
  const Matrix test = Matrix::FromRows({{3.0}});
  EXPECT_DOUBLE_EQ(scaler.Transform(test).ValueOrDie()(0, 0), 2.0);
}

TEST(StandardScalerTest, ErrorPaths) {
  StandardScaler scaler;
  EXPECT_FALSE(scaler.Fit(Matrix()).ok());
  EXPECT_FALSE(scaler.Transform(Matrix::FromRows({{1.0}})).ok());
}

}  // namespace
}  // namespace ml
}  // namespace nextmaint
