#include "ml/dataset.h"

#include <gtest/gtest.h>

#include "ml/binned_dataset.h"

namespace nextmaint {
namespace ml {
namespace {

Dataset MakeDataset() {
  Matrix x = Matrix::FromRows({{1, 10}, {2, 20}, {3, 30}, {4, 40}});
  return Dataset::Create(std::move(x), {1, 2, 3, 4}, {"a", "b"})
      .ValueOrDie();
}

TEST(DatasetTest, CreateValidatesShapes) {
  Matrix x = Matrix::FromRows({{1}, {2}});
  EXPECT_TRUE(Dataset::Create(x, {1, 2}).ok());
  EXPECT_FALSE(Dataset::Create(x, {1, 2, 3}).ok());
  EXPECT_FALSE(Dataset::Create(x, {1, 2}, {"a", "b"}).ok());  // 1 feature
}

TEST(DatasetTest, Accessors) {
  const Dataset d = MakeDataset();
  EXPECT_EQ(d.num_rows(), 4u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.feature_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_DOUBLE_EQ(d.y()[2], 3.0);
  EXPECT_DOUBLE_EQ(d.x()(2, 1), 30.0);
}

TEST(DatasetTest, AddRow) {
  Dataset d = MakeDataset();
  const std::vector<double> row = {5, 50};
  d.AddRow(std::span<const double>(row.data(), 2), 5.0);
  EXPECT_EQ(d.num_rows(), 5u);
  EXPECT_DOUBLE_EQ(d.y().back(), 5.0);
}

TEST(DatasetTest, SelectRowsWithDuplicates) {
  const Dataset d = MakeDataset();
  const Dataset sub = d.SelectRows({3, 3, 0});
  EXPECT_EQ(sub.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(sub.y()[0], 4.0);
  EXPECT_DOUBLE_EQ(sub.y()[1], 4.0);
  EXPECT_DOUBLE_EQ(sub.y()[2], 1.0);
  EXPECT_EQ(sub.feature_names(), d.feature_names());
}

TEST(DatasetTest, SplitAtIsChronological) {
  const Dataset d = MakeDataset();
  const auto [head, tail] = d.SplitAt(3);
  EXPECT_EQ(head.num_rows(), 3u);
  EXPECT_EQ(tail.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(tail.y()[0], 4.0);
}

TEST(DatasetTest, SplitAtClampsToSize) {
  const Dataset d = MakeDataset();
  const auto [head, tail] = d.SplitAt(99);
  EXPECT_EQ(head.num_rows(), 4u);
  EXPECT_TRUE(tail.empty());
}

TEST(DatasetTest, ConcatAppendsRows) {
  Dataset a = MakeDataset();
  const Dataset b = MakeDataset();
  ASSERT_TRUE(a.Concat(b).ok());
  EXPECT_EQ(a.num_rows(), 8u);
  EXPECT_DOUBLE_EQ(a.y()[4], 1.0);
}

TEST(DatasetTest, ConcatIntoEmptyAdopts) {
  Dataset empty;
  ASSERT_TRUE(empty.Concat(MakeDataset()).ok());
  EXPECT_EQ(empty.num_rows(), 4u);
  EXPECT_EQ(empty.num_features(), 2u);
}

TEST(DatasetTest, ConcatRejectsFeatureMismatch) {
  Dataset a = MakeDataset();
  Matrix x = Matrix::FromRows({{1}});
  Dataset b = Dataset::Create(std::move(x), {1}).ValueOrDie();
  EXPECT_FALSE(a.Concat(b).ok());
}

TEST(DatasetTest, ShuffledIsPermutation) {
  const Dataset d = MakeDataset();
  Rng rng(5);
  const Dataset shuffled = d.Shuffled(&rng);
  EXPECT_EQ(shuffled.num_rows(), d.num_rows());
  double sum = 0.0;
  for (double y : shuffled.y()) sum += y;
  EXPECT_DOUBLE_EQ(sum, 10.0);  // same multiset of targets
  // Feature rows stay attached to their targets.
  for (size_t r = 0; r < shuffled.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(shuffled.x()(r, 0), shuffled.y()[r]);
    EXPECT_DOUBLE_EQ(shuffled.x()(r, 1), 10.0 * shuffled.y()[r]);
  }
}

// ---------------------------------------------------------------------------
// BinMapper degenerate-column contract (see binned_dataset.h): an
// all-identical feature column collapses to a single bin that absorbs every
// query, and the histogram split search can therefore never split on it.

TEST(BinMapperDegenerateTest, AllIdenticalColumnGetsSingleBin) {
  const Matrix x = Matrix::FromRows({{7.5}, {7.5}, {7.5}, {7.5}});
  BinMapper mapper;
  mapper.Compute(x, /*max_bins=*/256);
  ASSERT_EQ(mapper.num_features(), 1u);
  EXPECT_EQ(mapper.BinCount(0), 1u);
  EXPECT_DOUBLE_EQ(mapper.UpperBound(0, 0), 7.5);
  // Below, equal and above the stored boundary all land in bin 0.
  EXPECT_EQ(mapper.BinOf(0, 7.5), 0);
  EXPECT_EQ(mapper.BinOf(0, -100.0), 0);
  EXPECT_EQ(mapper.BinOf(0, 100.0), 0);
}

TEST(BinMapperDegenerateTest, SingleRowMatrixGetsSingleBinPerFeature) {
  const Matrix x = Matrix::FromRows({{1.0, -3.0}});
  BinMapper mapper;
  mapper.Compute(x, /*max_bins=*/16);
  EXPECT_EQ(mapper.BinCount(0), 1u);
  EXPECT_EQ(mapper.BinCount(1), 1u);
  EXPECT_DOUBLE_EQ(mapper.UpperBound(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(mapper.UpperBound(1, 0), -3.0);
}

TEST(BinMapperDegenerateTest, AllZeroColumnKeepsZeroBoundary) {
  // Zero-usage days are the common real-world degenerate column; the single
  // boundary must be the value itself, not a sentinel.
  const Matrix x = Matrix::FromRows({{0.0}, {0.0}, {0.0}});
  BinMapper mapper;
  mapper.Compute(x, /*max_bins=*/256);
  EXPECT_EQ(mapper.BinCount(0), 1u);
  EXPECT_DOUBLE_EQ(mapper.UpperBound(0, 0), 0.0);
  EXPECT_EQ(mapper.BinOf(0, 0.0), 0);
}

TEST(BinMapperDegenerateTest, MixedDegenerateAndRealColumnsBinIndependently) {
  const Matrix x = Matrix::FromRows({{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}});
  BinMapper mapper;
  mapper.Compute(x, /*max_bins=*/256);
  EXPECT_EQ(mapper.BinCount(0), 1u);
  EXPECT_EQ(mapper.BinCount(1), 3u);
  EXPECT_EQ(mapper.BinOf(1, 2.0), 1);
  // A BinnedDataset built over the degenerate column stores bin 0
  // everywhere and stays narrow (uint8_t).
  BinnedDataset binned;
  binned.Build(x, mapper);
  EXPECT_TRUE(binned.IsNarrow(0));
  for (size_t r = 0; r < 3; ++r) EXPECT_EQ(binned.Bin(0, r), 0u);
}

}  // namespace
}  // namespace ml
}  // namespace nextmaint
