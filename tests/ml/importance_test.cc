// Tests for feature importances (tree, RF, XGB) and the random forest's
// ensemble-spread prediction interval.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/hist_gradient_boosting.h"
#include "ml/random_forest.h"

namespace nextmaint {
namespace ml {
namespace {

/// Feature 0 drives the target; feature 1 is pure noise.
Dataset MakeSignalNoiseData(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    const double signal = rng.Uniform(0, 10);
    const double noise = rng.Uniform(0, 10);
    const std::vector<double> row = {signal, noise};
    d.AddRow(std::span<const double>(row.data(), 2),
             signal > 5.0 ? 10.0 + signal : signal);
  }
  return d;
}

TEST(TreeImportanceTest, SignalFeatureDominates) {
  DecisionTreeRegressor tree;
  ASSERT_TRUE(tree.Fit(MakeSignalNoiseData(500, 1)).ok());
  const std::vector<double> importances = tree.FeatureImportances();
  ASSERT_EQ(importances.size(), 2u);
  EXPECT_GT(importances[0], 0.9);
  EXPECT_NEAR(importances[0] + importances[1], 1.0, 1e-9);
}

TEST(TreeImportanceTest, StumpHasZeroImportance) {
  Dataset d;
  for (double x = 0; x < 10; ++x) {
    const std::vector<double> row = {x};
    d.AddRow(std::span<const double>(row.data(), 1), 1.0);  // constant y
  }
  DecisionTreeRegressor tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  const std::vector<double> importances = tree.FeatureImportances();
  ASSERT_EQ(importances.size(), 1u);
  EXPECT_DOUBLE_EQ(importances[0], 0.0);
}

TEST(ForestImportanceTest, SignalFeatureDominatesAndNormalizes) {
  RandomForestRegressor::Options options;
  options.num_estimators = 20;
  RandomForestRegressor forest(options);
  ASSERT_TRUE(forest.Fit(MakeSignalNoiseData(500, 2)).ok());
  const std::vector<double> importances = forest.FeatureImportances();
  ASSERT_EQ(importances.size(), 2u);
  EXPECT_GT(importances[0], 0.8);
  EXPECT_NEAR(std::accumulate(importances.begin(), importances.end(), 0.0),
              1.0, 1e-9);
}

TEST(ForestImportanceTest, UnfittedReturnsEmpty) {
  RandomForestRegressor forest;
  EXPECT_TRUE(forest.FeatureImportances().empty());
}

TEST(XgbImportanceTest, SignalFeatureDominates) {
  HistGradientBoostingRegressor model;
  ASSERT_TRUE(model.Fit(MakeSignalNoiseData(500, 3)).ok());
  const std::vector<double> importances = model.FeatureImportances();
  ASSERT_EQ(importances.size(), 2u);
  EXPECT_GT(importances[0], 0.8);
  EXPECT_NEAR(importances[0] + importances[1], 1.0, 1e-9);
}

TEST(PredictWithSpreadTest, MeanMatchesPredict) {
  RandomForestRegressor::Options options;
  options.num_estimators = 25;
  RandomForestRegressor forest(options);
  const Dataset data = MakeSignalNoiseData(300, 4);
  ASSERT_TRUE(forest.Fit(data).ok());
  const std::vector<double> probe = {3.0, 5.0};
  const auto span = std::span<const double>(probe.data(), 2);
  const auto interval = forest.PredictWithSpread(span).ValueOrDie();
  EXPECT_DOUBLE_EQ(interval.mean, forest.Predict(span).ValueOrDie());
  EXPECT_GE(interval.stddev, 0.0);
}

TEST(PredictWithSpreadTest, SpreadGrowsNearDecisionBoundary) {
  // Right at the step (signal = 5) trees disagree; far from it they agree.
  RandomForestRegressor::Options options;
  options.num_estimators = 40;
  RandomForestRegressor forest(options);
  ASSERT_TRUE(forest.Fit(MakeSignalNoiseData(400, 5)).ok());
  const std::vector<double> at_boundary = {5.0, 5.0};
  const std::vector<double> far_away = {1.0, 5.0};
  const double boundary_spread =
      forest
          .PredictWithSpread(
              std::span<const double>(at_boundary.data(), 2))
          .ValueOrDie()
          .stddev;
  const double far_spread =
      forest
          .PredictWithSpread(std::span<const double>(far_away.data(), 2))
          .ValueOrDie()
          .stddev;
  EXPECT_GT(boundary_spread, far_spread);
}

TEST(PredictWithSpreadTest, UnfittedFails) {
  RandomForestRegressor forest;
  const std::vector<double> probe = {1.0};
  EXPECT_FALSE(
      forest.PredictWithSpread(std::span<const double>(probe.data(), 1))
          .ok());
}

}  // namespace
}  // namespace ml
}  // namespace nextmaint
