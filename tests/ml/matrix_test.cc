#include "ml/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nextmaint {
namespace ml {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.empty());
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(MatrixTest, EmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, FromRows) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, RowSpanViewsUnderlyingData) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  std::span<const double> row = m.Row(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  m.MutableRow(1)[0] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
}

TEST(MatrixTest, ColCopies) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.Col(1), (std::vector<double>{2, 4}));
}

TEST(MatrixTest, AppendRowSetsWidth) {
  Matrix m;
  const std::vector<double> row = {1, 2, 3};
  m.AppendRow(std::span<const double>(row.data(), row.size()));
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(MatrixTest, AppendRowWrongWidthAborts) {
  Matrix m = Matrix::FromRows({{1, 2}});
  const std::vector<double> bad = {1, 2, 3};
  EXPECT_DEATH(m.AppendRow(std::span<const double>(bad.data(), bad.size())),
               "row length");
}

TEST(MatrixTest, SelectRowsAllowsDuplicates) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  const Matrix sub = m.SelectRows({2, 0, 2});
  EXPECT_EQ(sub.rows(), 3u);
  EXPECT_DOUBLE_EQ(sub(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sub(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(sub(2, 0), 5.0);
}

TEST(MatrixTest, SelectCols) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix sub = m.SelectCols({2, 0});
  EXPECT_EQ(sub.cols(), 2u);
  EXPECT_DOUBLE_EQ(sub(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sub(1, 1), 4.0);
}

TEST(MatrixTest, Transposed) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, Multiply) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, GramEqualsTransposeTimesSelf) {
  const Matrix x = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  const Matrix gram = x.Gram();
  const Matrix reference = x.Transposed().Multiply(x);
  ASSERT_EQ(gram.rows(), reference.rows());
  for (size_t i = 0; i < gram.rows(); ++i) {
    for (size_t j = 0; j < gram.cols(); ++j) {
      EXPECT_DOUBLE_EQ(gram(i, j), reference(i, j));
    }
  }
}

TEST(MatrixTest, MultiplyVector) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  const std::vector<double> v = {1, 1};
  EXPECT_EQ(m.MultiplyVector(std::span<const double>(v.data(), 2)),
            (std::vector<double>{3, 7}));
}

TEST(MatrixTest, TransposeMultiplyVector) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  const std::vector<double> v = {1, 1};
  EXPECT_EQ(m.TransposeMultiplyVector(std::span<const double>(v.data(), 2)),
            (std::vector<double>{4, 6}));
}

TEST(MatrixTest, AllFinite) {
  Matrix m = Matrix::FromRows({{1, 2}});
  EXPECT_TRUE(m.AllFinite());
  m(0, 1) = std::nan("");
  EXPECT_FALSE(m.AllFinite());
  m(0, 1) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(m.AllFinite());
}

TEST(DotTest, Basic) {
  const std::vector<double> a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(std::span<const double>(a.data(), 3),
                       std::span<const double>(b.data(), 3)),
                   32.0);
}

TEST(CholeskySolveTest, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [6,5] -> x = [1,1].
  const Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  const std::vector<double> b = {6, 5};
  const std::vector<double> x =
      CholeskySolve(a, std::span<const double>(b.data(), 2)).ValueOrDie();
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(CholeskySolveTest, RejectsNonSpd) {
  const Matrix indefinite = Matrix::FromRows({{1, 2}, {2, 1}});
  const std::vector<double> b = {1, 1};
  EXPECT_FALSE(
      CholeskySolve(indefinite, std::span<const double>(b.data(), 2)).ok());
}

TEST(CholeskySolveTest, RejectsShapeErrors) {
  const Matrix rect = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const std::vector<double> b = {1, 1};
  EXPECT_FALSE(CholeskySolve(rect, std::span<const double>(b.data(), 2)).ok());
  const Matrix square = Matrix::FromRows({{1, 0}, {0, 1}});
  const std::vector<double> wrong = {1, 2, 3};
  EXPECT_FALSE(
      CholeskySolve(square, std::span<const double>(wrong.data(), 3)).ok());
}

TEST(SolveLeastSquaresTest, ExactFitOnConsistentSystem) {
  // y = 2*x0 + 3*x1 exactly.
  const Matrix x = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}, {2, 1}});
  const std::vector<double> y = {2, 3, 5, 7};
  const std::vector<double> w =
      SolveLeastSquares(x, std::span<const double>(y.data(), y.size()))
          .ValueOrDie();
  EXPECT_NEAR(w[0], 2.0, 1e-10);
  EXPECT_NEAR(w[1], 3.0, 1e-10);
}

TEST(SolveLeastSquaresTest, RidgeShrinksWeights) {
  const Matrix x = Matrix::FromRows({{1.0}, {2.0}, {3.0}});
  const std::vector<double> y = {2, 4, 6};
  const double plain =
      SolveLeastSquares(x, std::span<const double>(y.data(), 3), 0.0)
          .ValueOrDie()[0];
  const double ridge =
      SolveLeastSquares(x, std::span<const double>(y.data(), 3), 100.0)
          .ValueOrDie()[0];
  EXPECT_NEAR(plain, 2.0, 1e-10);
  EXPECT_LT(ridge, plain);
  EXPECT_GT(ridge, 0.0);
}

TEST(SolveLeastSquaresTest, CollinearFeaturesHandledByJitter) {
  // Second column duplicates the first: the Gram matrix is singular; the
  // jitter retry must still produce a finite solution reproducing y.
  const Matrix x = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  const std::vector<double> y = {2, 4, 6};
  const auto w =
      SolveLeastSquares(x, std::span<const double>(y.data(), 3)).ValueOrDie();
  EXPECT_NEAR(w[0] + w[1], 2.0, 1e-4);
}

TEST(SolveLeastSquaresTest, RejectsShapeMismatch) {
  const Matrix x = Matrix::FromRows({{1}, {2}});
  const std::vector<double> y = {1, 2, 3};
  EXPECT_FALSE(
      SolveLeastSquares(x, std::span<const double>(y.data(), 3)).ok());
}

}  // namespace
}  // namespace ml
}  // namespace nextmaint
