// Warm-start differential harness (docs/warm-start.md): ContinueFit must
// (a) be a byte-identical no-op at extra_rounds == 0, (b) resume
// identically after a serialization round trip, (c) be bit-identical at
// any thread count over a randomized append schedule, and (d) track the
// equivalent cold retrain within a divergence bound. A golden fingerprint
// file pins the warm-resumed model bytes (same pattern as
// binned_equality.golden).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/hist_gradient_boosting.h"
#include "ml/linear_regression.h"
#include "ml/random_forest.h"
#include "ml/regressor.h"
#include "ml/serialization.h"

namespace nextmaint {
namespace ml {
namespace {

/// Deterministic fleet-shaped data. Generated in one pass so any prefix of
/// a larger call is bit-identical to a smaller call — the append schedule
/// below takes prefixes of one full matrix.
Dataset MakeFleetData(uint64_t seed, int rows) {
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < rows; ++i) {
    const double x0 = rng.Uniform(0, 12);
    const double x1 = 0.5 * static_cast<double>(rng.UniformInt(uint64_t{24}));
    const double x2 = static_cast<double>(rng.UniformInt(uint64_t{7}));
    const double x3 = rng.Uniform(-4, 4);
    const std::vector<double> row = {x0, x1, x2, x3};
    d.AddRow(std::span<const double>(row.data(), 4),
             30.0 - 1.5 * x0 - x1 + 0.5 * x2 * x2 + rng.Normal(0, 0.4));
  }
  return d;
}

Dataset Prefix(const Dataset& full, size_t rows) {
  std::vector<size_t> indices(rows);
  std::iota(indices.begin(), indices.end(), size_t{0});
  return full.SelectRows(indices);
}

std::string SerializedBytes(const Regressor& model) {
  std::ostringstream out;
  EXPECT_TRUE(model.Save(out).ok());
  return std::move(out).str();
}

/// A randomized append schedule: initial fit on `initial` rows, then
/// `steps` grows of rng-drawn size, each followed by a ContinueFit for
/// `extra_rounds` units on the grown prefix.
struct AppendSchedule {
  size_t initial = 0;
  std::vector<size_t> sizes_after_append;  // cumulative row counts
};

AppendSchedule MakeSchedule(uint64_t seed, size_t initial, size_t max_rows,
                            int steps) {
  AppendSchedule schedule;
  schedule.initial = initial;
  Rng rng(seed);
  size_t rows = initial;
  for (int s = 0; s < steps; ++s) {
    rows += 20 + static_cast<size_t>(rng.UniformInt(uint64_t{41}));
    if (rows > max_rows) rows = max_rows;
    schedule.sizes_after_append.push_back(rows);
  }
  return schedule;
}

HistGradientBoostingRegressor::Options XgbOptions(int threads) {
  HistGradientBoostingRegressor::Options options;
  options.num_iterations = 15;
  options.max_depth = 3;
  options.num_threads = threads;
  return options;
}

RandomForestRegressor::Options RfOptions(int threads) {
  RandomForestRegressor::Options options;
  options.num_estimators = 15;
  options.max_depth = 6;
  options.num_threads = threads;
  return options;
}

/// Runs the warm path over a schedule and returns the serialized model.
template <typename Model, typename Options>
std::unique_ptr<Model> WarmModel(const Options& options, const Dataset& full,
                                 const AppendSchedule& schedule,
                                 int extra_rounds) {
  auto model = std::make_unique<Model>(options);
  EXPECT_TRUE(model->Fit(Prefix(full, schedule.initial)).ok());
  for (const size_t rows : schedule.sizes_after_append) {
    EXPECT_TRUE(model->ContinueFit(Prefix(full, rows), extra_rounds).ok());
  }
  return model;
}

// ---------------------------------------------------------------------------
// extra_rounds == 0: byte-identical no-op, even on grown data.

TEST(WarmStartTest, ZeroExtraRoundsIsByteIdenticalNoOp) {
  const Dataset full = MakeFleetData(991, 260);
  {
    HistGradientBoostingRegressor model(XgbOptions(1));
    ASSERT_TRUE(model.Fit(Prefix(full, 180)).ok());
    const std::string before = SerializedBytes(model);
    ASSERT_TRUE(model.ContinueFit(full, 0).ok());
    EXPECT_EQ(before, SerializedBytes(model)) << "XGB";
  }
  {
    RandomForestRegressor model(RfOptions(1));
    ASSERT_TRUE(model.Fit(Prefix(full, 180)).ok());
    const std::string before = SerializedBytes(model);
    ASSERT_TRUE(model.ContinueFit(full, 0).ok());
    EXPECT_EQ(before, SerializedBytes(model)) << "RF";
  }
}

// ---------------------------------------------------------------------------
// Contract errors.

TEST(WarmStartTest, UnfittedModelRefusesContinueFit) {
  const Dataset data = MakeFleetData(5, 60);
  HistGradientBoostingRegressor xgb(XgbOptions(1));
  EXPECT_EQ(xgb.ContinueFit(data, 5).code(),
            StatusCode::kFailedPrecondition);
  RandomForestRegressor rf(RfOptions(1));
  EXPECT_EQ(rf.ContinueFit(data, 5).code(), StatusCode::kFailedPrecondition);
}

TEST(WarmStartTest, NegativeExtraRoundsIsRejected) {
  const Dataset data = MakeFleetData(6, 80);
  HistGradientBoostingRegressor model(XgbOptions(1));
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_EQ(model.ContinueFit(data, -1).code(),
            StatusCode::kInvalidArgument);
}

TEST(WarmStartTest, NonEnsembleModelsRefuseWarmStart) {
  const Dataset data = MakeFleetData(7, 80);
  LinearRegression lr;
  ASSERT_TRUE(lr.Fit(data).ok());
  const Status refused = lr.ContinueFit(data, 3);
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
}

TEST(WarmStartTest, FeatureCountMismatchIsRejectedWithoutMutation) {
  const Dataset data = MakeFleetData(8, 120);
  Dataset narrow;
  for (int i = 0; i < 40; ++i) {
    const std::vector<double> row = {static_cast<double>(i)};
    narrow.AddRow(std::span<const double>(row.data(), 1), 1.0);
  }
  HistGradientBoostingRegressor model(XgbOptions(1));
  ASSERT_TRUE(model.Fit(data).ok());
  const std::string before = SerializedBytes(model);
  EXPECT_EQ(model.ContinueFit(narrow, 4).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(before, SerializedBytes(model));
}

// ---------------------------------------------------------------------------
// Serialization round trip: save -> load -> continue must equal continue.
// The 'resume' line persists every hyper-parameter (and for RF the seed)
// the continuation stream depends on.

TEST(WarmStartTest, SaveLoadContinueMatchesInMemoryContinue) {
  const Dataset full = MakeFleetData(2024, 260);
  {
    HistGradientBoostingRegressor model(XgbOptions(1));
    ASSERT_TRUE(model.Fit(Prefix(full, 170)).ok());
    std::istringstream in(SerializedBytes(model));
    auto loaded = LoadRegressor(in).MoveValueOrDie();
    ASSERT_TRUE(model.ContinueFit(full, 6).ok());
    ASSERT_TRUE(loaded->ContinueFit(full, 6).ok());
    EXPECT_EQ(SerializedBytes(model), SerializedBytes(*loaded)) << "XGB";
  }
  {
    RandomForestRegressor model(RfOptions(1));
    ASSERT_TRUE(model.Fit(Prefix(full, 170)).ok());
    std::istringstream in(SerializedBytes(model));
    auto loaded = LoadRegressor(in).MoveValueOrDie();
    ASSERT_TRUE(model.ContinueFit(full, 6).ok());
    ASSERT_TRUE(loaded->ContinueFit(full, 6).ok());
    EXPECT_EQ(SerializedBytes(model), SerializedBytes(*loaded)) << "RF";
  }
}

// ---------------------------------------------------------------------------
// Determinism across thread counts over a randomized append schedule.

TEST(WarmStartTest, AppendScheduleIsBitIdenticalAcrossThreadCounts) {
  const Dataset full = MakeFleetData(31337, 320);
  const AppendSchedule schedule = MakeSchedule(17, 160, 320, 3);
  {
    const auto one = WarmModel<HistGradientBoostingRegressor>(
        XgbOptions(1), full, schedule, 5);
    const auto four = WarmModel<HistGradientBoostingRegressor>(
        XgbOptions(4), full, schedule, 5);
    EXPECT_EQ(SerializedBytes(*one), SerializedBytes(*four)) << "XGB";
  }
  {
    const auto one =
        WarmModel<RandomForestRegressor>(RfOptions(1), full, schedule, 5);
    const auto four =
        WarmModel<RandomForestRegressor>(RfOptions(4), full, schedule, 5);
    EXPECT_EQ(SerializedBytes(*one), SerializedBytes(*four)) << "RF";
  }
}

// ---------------------------------------------------------------------------
// Divergence bound: the warm model is an approximation of the cold retrain
// with the same total ensemble size on the final data. It need not be
// bit-identical — that is the whole point of the trade — but it must track
// the cold model within the documented bound (docs/warm-start.md).

double MeanRelativeDivergence(const Regressor& warm, const Regressor& cold,
                              const Dataset& probes) {
  double total = 0.0;
  for (size_t r = 0; r < probes.num_rows(); ++r) {
    const double w = warm.Predict(probes.x().Row(r)).ValueOrDie();
    const double c = cold.Predict(probes.x().Row(r)).ValueOrDie();
    total += std::fabs(w - c) / std::max(std::fabs(c), 1.0);
  }
  return total / static_cast<double>(probes.num_rows());
}

TEST(WarmStartTest, WarmTracksColdWithinDivergenceBound) {
  // Bound shared with bench_serving and docs/warm-start.md.
  constexpr double kBound = 0.25;
  const Dataset full = MakeFleetData(555, 320);
  const Dataset probes = MakeFleetData(556, 80);
  const AppendSchedule schedule = MakeSchedule(23, 160, 320, 3);
  const int extra_rounds = 5;
  const int total_extra =
      extra_rounds * static_cast<int>(schedule.sizes_after_append.size());
  {
    const auto warm = WarmModel<HistGradientBoostingRegressor>(
        XgbOptions(1), full, schedule, extra_rounds);
    HistGradientBoostingRegressor::Options cold_options = XgbOptions(1);
    cold_options.num_iterations += total_extra;
    HistGradientBoostingRegressor cold(cold_options);
    ASSERT_TRUE(cold.Fit(full).ok());
    const double divergence = MeanRelativeDivergence(*warm, cold, probes);
    EXPECT_LT(divergence, kBound) << "XGB";
  }
  {
    const auto warm = WarmModel<RandomForestRegressor>(RfOptions(1), full,
                                                       schedule, extra_rounds);
    RandomForestRegressor::Options cold_options = RfOptions(1);
    cold_options.num_estimators += total_extra;
    RandomForestRegressor cold(cold_options);
    ASSERT_TRUE(cold.Fit(full).ok());
    const double divergence = MeanRelativeDivergence(*warm, cold, probes);
    EXPECT_LT(divergence, kBound) << "RF";
  }
}

// ---------------------------------------------------------------------------
// Resumed ensembles actually grow, and the loss curves grow with them.

TEST(WarmStartTest, ResumeExtendsEnsembleAndLossCurves) {
  const Dataset full = MakeFleetData(777, 240);
  HistGradientBoostingRegressor xgb(XgbOptions(1));
  ASSERT_TRUE(xgb.Fit(Prefix(full, 160)).ok());
  const size_t trees_before = xgb.tree_count();
  const size_t losses_before = xgb.training_loss_curve().size();
  ASSERT_TRUE(xgb.ContinueFit(full, 7).ok());
  EXPECT_EQ(xgb.tree_count(), trees_before + 7);
  EXPECT_EQ(xgb.training_loss_curve().size(), losses_before + 7);

  RandomForestRegressor rf(RfOptions(1));
  ASSERT_TRUE(rf.Fit(Prefix(full, 160)).ok());
  ASSERT_FALSE(std::isnan(rf.oob_mae()));
  ASSERT_TRUE(rf.ContinueFit(full, 7).ok());
  EXPECT_EQ(rf.tree_count(), 22u);
  // The original out-of-bag membership is unrecoverable after a resume.
  EXPECT_TRUE(std::isnan(rf.oob_mae()));
}

// A resume with the tail-holdout early stopping configured may stop before
// exhausting extra_rounds, but never exceeds it and stays deterministic.
TEST(WarmStartTest, ResumeHonorsTailHoldoutEarlyStopping) {
  const Dataset full = MakeFleetData(888, 300);
  HistGradientBoostingRegressor::Options options = XgbOptions(1);
  options.validation_fraction = 0.2;
  options.early_stopping_rounds = 3;
  HistGradientBoostingRegressor model(options);
  ASSERT_TRUE(model.Fit(Prefix(full, 200)).ok());
  const size_t trees_before = model.tree_count();
  ASSERT_TRUE(model.ContinueFit(full, 50).ok());
  EXPECT_GT(model.tree_count(), trees_before);
  EXPECT_LE(model.tree_count(), trees_before + 50);
  EXPECT_GT(model.validation_loss_curve().size(), 0u);
}

// ---------------------------------------------------------------------------
// Golden fingerprints: the warm-resumed model bytes for a fixed schedule
// are pinned, binned_equality.golden-style.

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string HexFingerprint(uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

std::string GoldenPath() {
  return std::string(NEXTMAINT_ML_GOLDEN_DIR) + "/warm_start.golden";
}

std::map<std::string, std::string> ReadGolden() {
  std::map<std::string, std::string> golden;
  std::ifstream in(GoldenPath());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string id, fingerprint;
    fields >> id >> fingerprint;
    if (!id.empty() && !fingerprint.empty()) golden[id] = fingerprint;
  }
  return golden;
}

TEST(WarmStartTest, WarmResumedModelBytesMatchGoldenFingerprints) {
  const Dataset full = MakeFleetData(1234, 300);
  const AppendSchedule schedule = MakeSchedule(99, 150, 300, 2);
  std::map<std::string, std::string> current;
  current["XGB_warm_i15_d3_r5"] = HexFingerprint(
      Fnv1a(SerializedBytes(*WarmModel<HistGradientBoostingRegressor>(
          XgbOptions(1), full, schedule, 5))));
  current["RF_warm_e15_d6_r5"] = HexFingerprint(Fnv1a(SerializedBytes(
      *WarmModel<RandomForestRegressor>(RfOptions(1), full, schedule, 5))));

  if (std::getenv("NEXTMAINT_REGEN_GOLDEN") != nullptr) {
    std::ifstream existing(GoldenPath());
    std::vector<std::string> header;
    std::string line;
    while (std::getline(existing, line)) {
      if (!line.empty() && line[0] == '#') header.push_back(line);
    }
    existing.close();
    std::ofstream out(GoldenPath(), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot rewrite " << GoldenPath();
    for (const std::string& kept : header) out << kept << "\n";
    for (const auto& [id, fingerprint] : current) {
      out << id << " " << fingerprint << "\n";
    }
    GTEST_SKIP() << "golden fingerprints regenerated at " << GoldenPath();
  }

  const std::map<std::string, std::string> golden = ReadGolden();
  ASSERT_FALSE(golden.empty())
      << "missing or empty golden file " << GoldenPath();
  for (const auto& [id, fingerprint] : current) {
    const auto it = golden.find(id);
    ASSERT_NE(it, golden.end()) << "no golden entry for " << id;
    EXPECT_EQ(it->second, fingerprint)
        << id << ": warm-resumed model bytes drifted from the golden pin; "
        << "if this is an intentional re-pin, document it in the golden "
        << "header and rerun with NEXTMAINT_REGEN_GOLDEN=1";
  }
  EXPECT_EQ(golden.size(), current.size())
      << "golden file has stale entries; regenerate it";
}

}  // namespace
}  // namespace ml
}  // namespace nextmaint
