// Tests for the tree-based models: DecisionTreeRegressor,
// RandomForestRegressor and HistGradientBoostingRegressor.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/hist_gradient_boosting.h"
#include "ml/random_forest.h"

namespace nextmaint {
namespace ml {
namespace {

/// A step function: y = 10 for x < 0.5, y = -10 otherwise. Trees should fit
/// it exactly; linear models cannot.
Dataset MakeStepData(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 1);
    const std::vector<double> row = {x};
    d.AddRow(std::span<const double>(row.data(), 1),
             x < 0.5 ? 10.0 : -10.0);
  }
  return d;
}

/// Nonlinear two-feature target: y = x0 * x1 (interaction).
Dataset MakeInteractionData(size_t n, uint64_t seed, double noise = 0.0) {
  Rng rng(seed);
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(0, 4);
    const double x1 = rng.Uniform(0, 4);
    const std::vector<double> row = {x0, x1};
    d.AddRow(std::span<const double>(row.data(), 2),
             x0 * x1 + rng.Normal(0.0, noise));
  }
  return d;
}

double Mae(const Regressor& model, const Dataset& data) {
  const std::vector<double> preds =
      model.PredictBatch(data.x()).ValueOrDie();
  double acc = 0.0;
  for (size_t i = 0; i < preds.size(); ++i) {
    acc += std::fabs(preds[i] - data.y()[i]);
  }
  return acc / static_cast<double>(preds.size());
}

TEST(DecisionTreeTest, FitsStepFunctionExactly) {
  DecisionTreeRegressor tree;
  const Dataset data = MakeStepData(200, 1);
  ASSERT_TRUE(tree.Fit(data).ok());
  EXPECT_LT(Mae(tree, data), 1e-9);
  EXPECT_GE(tree.leaf_count(), 2u);
}

TEST(DecisionTreeTest, SingleLeafForConstantTarget) {
  Dataset d;
  for (double x = 0; x < 10; ++x) {
    const std::vector<double> row = {x};
    d.AddRow(std::span<const double>(row.data(), 1), 4.0);
  }
  DecisionTreeRegressor tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.depth(), 0);
  const std::vector<double> probe = {99.0};
  EXPECT_DOUBLE_EQ(
      tree.Predict(std::span<const double>(probe.data(), 1)).ValueOrDie(),
      4.0);
}

TEST(DecisionTreeTest, MaxDepthLimitsTree) {
  DecisionTreeRegressor::Options options;
  options.max_depth = 2;
  DecisionTreeRegressor tree(options);
  ASSERT_TRUE(tree.Fit(MakeInteractionData(500, 2)).ok());
  EXPECT_LE(tree.depth(), 2);
  EXPECT_LE(tree.leaf_count(), 4u);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  DecisionTreeRegressor::Options options;
  options.min_samples_leaf = 50;
  DecisionTreeRegressor tree(options);
  const Dataset data = MakeInteractionData(200, 3);
  ASSERT_TRUE(tree.Fit(data).ok());
  // 200 samples with min leaf 50 allows at most 4 leaves.
  EXPECT_LE(tree.leaf_count(), 4u);
}

TEST(DecisionTreeTest, ConstantFeatureNeverSplit) {
  Rng rng(5);
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(0, 1);
    const std::vector<double> row = {5.0, x};  // feature 0 constant
    d.AddRow(std::span<const double>(row.data(), 2), x > 0.5 ? 1.0 : 0.0);
  }
  DecisionTreeRegressor tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  EXPECT_LT(Mae(tree, d), 1e-9);  // splits on feature 1 alone
}

TEST(DecisionTreeTest, FitIndicesUsesSubset) {
  const Dataset data = MakeStepData(100, 7);
  DecisionTreeRegressor tree;
  // Train only on the x < 0.5 half: predictions collapse to 10 everywhere.
  std::vector<size_t> subset;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    if (data.x()(i, 0) < 0.5) subset.push_back(i);
  }
  ASSERT_TRUE(tree.FitIndices(data, subset).ok());
  const std::vector<double> probe = {0.9};
  EXPECT_DOUBLE_EQ(
      tree.Predict(std::span<const double>(probe.data(), 1)).ValueOrDie(),
      10.0);
}

TEST(DecisionTreeTest, ErrorPaths) {
  DecisionTreeRegressor tree;
  EXPECT_FALSE(tree.Fit(Dataset()).ok());
  EXPECT_FALSE(tree.is_fitted());
  const std::vector<double> probe = {1.0};
  EXPECT_EQ(tree.Predict(std::span<const double>(probe.data(), 1))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  DecisionTreeRegressor::Options bad;
  bad.min_samples_leaf = 0;
  DecisionTreeRegressor invalid(bad);
  EXPECT_FALSE(invalid.Fit(MakeStepData(10, 8)).ok());
}

TEST(DecisionTreeTest, PredictValidatesFeatureCount) {
  DecisionTreeRegressor tree;
  ASSERT_TRUE(tree.Fit(MakeInteractionData(50, 9)).ok());
  const std::vector<double> wrong = {1.0};
  EXPECT_EQ(tree.Predict(std::span<const double>(wrong.data(), 1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RandomForestTest, BeatsSingleTreeOnNoisyData) {
  const Dataset train = MakeInteractionData(400, 10, /*noise=*/2.0);
  const Dataset test = MakeInteractionData(400, 11, /*noise=*/0.0);

  DecisionTreeRegressor tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  RandomForestRegressor::Options options;
  options.num_estimators = 50;
  RandomForestRegressor forest(options);
  ASSERT_TRUE(forest.Fit(train).ok());

  EXPECT_LT(Mae(forest, test), Mae(tree, test));
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  const Dataset data = MakeInteractionData(200, 12, 1.0);
  RandomForestRegressor a, b;
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  const std::vector<double> probe = {1.5, 2.5};
  EXPECT_DOUBLE_EQ(
      a.Predict(std::span<const double>(probe.data(), 2)).ValueOrDie(),
      b.Predict(std::span<const double>(probe.data(), 2)).ValueOrDie());
}

TEST(RandomForestTest, DifferentSeedsDifferentForests) {
  const Dataset data = MakeInteractionData(200, 13, 1.0);
  RandomForestRegressor::Options oa, ob;
  oa.seed = 1;
  ob.seed = 2;
  RandomForestRegressor a(oa), b(ob);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  const std::vector<double> probe = {1.5, 2.5};
  EXPECT_NE(
      a.Predict(std::span<const double>(probe.data(), 2)).ValueOrDie(),
      b.Predict(std::span<const double>(probe.data(), 2)).ValueOrDie());
}

TEST(RandomForestTest, TreeCountMatchesOption) {
  RandomForestRegressor::Options options;
  options.num_estimators = 7;
  RandomForestRegressor forest(options);
  ASSERT_TRUE(forest.Fit(MakeStepData(100, 14)).ok());
  EXPECT_EQ(forest.tree_count(), 7u);
}

TEST(RandomForestTest, OobErrorIsReasonable) {
  RandomForestRegressor::Options options;
  options.num_estimators = 30;
  RandomForestRegressor forest(options);
  ASSERT_TRUE(forest.Fit(MakeStepData(300, 15)).ok());
  // Step data is easy: OOB MAE should be far below the target spread (20).
  EXPECT_FALSE(std::isnan(forest.oob_mae()));
  EXPECT_LT(forest.oob_mae(), 2.0);
}

TEST(RandomForestTest, InvalidOptions) {
  const Dataset data = MakeStepData(50, 16);
  {
    RandomForestRegressor::Options options;
    options.num_estimators = 0;
    RandomForestRegressor forest(options);
    EXPECT_FALSE(forest.Fit(data).ok());
  }
  {
    RandomForestRegressor::Options options;
    options.bootstrap_fraction = 1.5;
    RandomForestRegressor forest(options);
    EXPECT_FALSE(forest.Fit(data).ok());
  }
}

TEST(RandomForestTest, OptionsFromParams) {
  const auto options = RandomForestRegressor::OptionsFromParams(
      {{"num_estimators", 250}, {"max_depth", 12}, {"min_samples_leaf", 3}});
  EXPECT_EQ(options.num_estimators, 250);
  EXPECT_EQ(options.max_depth, 12);
  EXPECT_EQ(options.min_samples_leaf, 3);
}

TEST(HistGradientBoostingTest, FitsStepFunction) {
  HistGradientBoostingRegressor model;
  const Dataset data = MakeStepData(300, 20);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_LT(Mae(model, data), 0.5);
}

TEST(HistGradientBoostingTest, FitsInteraction) {
  HistGradientBoostingRegressor::Options options;
  options.num_iterations = 200;
  options.min_samples_leaf = 5;
  HistGradientBoostingRegressor model(options);
  const Dataset train = MakeInteractionData(2000, 21);
  const Dataset test = MakeInteractionData(500, 22);
  ASSERT_TRUE(model.Fit(train).ok());
  // Targets range over [0, 16]; a good fit is well under 1.0 MAE.
  EXPECT_LT(Mae(model, test), 1.0);
}

TEST(HistGradientBoostingTest, TrainingLossDecreases) {
  HistGradientBoostingRegressor model;
  ASSERT_TRUE(model.Fit(MakeInteractionData(500, 23)).ok());
  const std::vector<double>& losses = model.training_loss_curve();
  ASSERT_GE(losses.size(), 2u);
  EXPECT_LT(losses.back(), losses.front());
  // Squared loss under shrinkage is monotone non-increasing.
  for (size_t i = 1; i < losses.size(); ++i) {
    EXPECT_LE(losses[i], losses[i - 1] + 1e-9);
  }
}

TEST(HistGradientBoostingTest, LearningRateTradesIterations) {
  const Dataset data = MakeInteractionData(500, 24);
  HistGradientBoostingRegressor::Options slow;
  slow.learning_rate = 0.01;
  slow.num_iterations = 20;
  HistGradientBoostingRegressor slow_model(slow);
  ASSERT_TRUE(slow_model.Fit(data).ok());
  HistGradientBoostingRegressor::Options fast;
  fast.learning_rate = 0.3;
  fast.num_iterations = 20;
  HistGradientBoostingRegressor fast_model(fast);
  ASSERT_TRUE(fast_model.Fit(data).ok());
  // With few iterations, the faster learning rate fits the data tighter.
  EXPECT_LT(Mae(fast_model, data), Mae(slow_model, data));
}

TEST(HistGradientBoostingTest, FewBinsStillWork) {
  HistGradientBoostingRegressor::Options options;
  options.max_bins = 4;
  HistGradientBoostingRegressor model(options);
  const Dataset data = MakeStepData(200, 25);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_LT(Mae(model, data), 3.0);
}

TEST(HistGradientBoostingTest, ConstantTargetConvergesImmediately) {
  Dataset d;
  for (double x = 0; x < 50; ++x) {
    const std::vector<double> row = {x};
    d.AddRow(std::span<const double>(row.data(), 1), 3.0);
  }
  HistGradientBoostingRegressor model;
  ASSERT_TRUE(model.Fit(d).ok());
  const std::vector<double> probe = {25.0};
  EXPECT_NEAR(
      model.Predict(std::span<const double>(probe.data(), 1)).ValueOrDie(),
      3.0, 1e-9);
  // Early stop: far fewer trees than requested.
  EXPECT_LT(model.tree_count(), 100u);
}

TEST(HistGradientBoostingTest, InvalidOptions) {
  const Dataset data = MakeStepData(50, 26);
  {
    HistGradientBoostingRegressor::Options options;
    options.num_iterations = 0;
    HistGradientBoostingRegressor model(options);
    EXPECT_FALSE(model.Fit(data).ok());
  }
  {
    HistGradientBoostingRegressor::Options options;
    options.learning_rate = 0.0;
    HistGradientBoostingRegressor model(options);
    EXPECT_FALSE(model.Fit(data).ok());
  }
  {
    HistGradientBoostingRegressor::Options options;
    options.max_bins = 1;
    HistGradientBoostingRegressor model(options);
    EXPECT_FALSE(model.Fit(data).ok());
  }
}

TEST(HistGradientBoostingTest, OptionsFromParams) {
  const auto options = HistGradientBoostingRegressor::OptionsFromParams(
      {{"num_iterations", 500},
       {"max_depth", 4},
       {"learning_rate", 0.05},
       {"max_bins", 64}});
  EXPECT_EQ(options.num_iterations, 500);
  EXPECT_EQ(options.max_depth, 4);
  EXPECT_DOUBLE_EQ(options.learning_rate, 0.05);
  EXPECT_EQ(options.max_bins, 64);
}


TEST(HistGradientBoostingTest, EarlyStoppingHaltsOnPlateau) {
  // Pure-noise target: the validation loss cannot improve, so boosting
  // must stop after ~early_stopping_rounds stages instead of 400.
  Rng rng(40);
  Dataset d;
  for (int i = 0; i < 400; ++i) {
    const std::vector<double> row = {rng.Uniform(0, 1)};
    d.AddRow(std::span<const double>(row.data(), 1), rng.Normal(0, 1));
  }
  HistGradientBoostingRegressor::Options options;
  options.num_iterations = 400;
  options.validation_fraction = 0.25;
  options.early_stopping_rounds = 5;
  HistGradientBoostingRegressor model(options);
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_LT(model.tree_count(), 100u);
  EXPECT_FALSE(model.validation_loss_curve().empty());
}

TEST(HistGradientBoostingTest, EarlyStoppingKeepsLearnableSignal) {
  // Strong signal: early stopping must not fire prematurely, and the fit
  // quality should be close to the no-validation run.
  const Dataset train = MakeInteractionData(1500, 41);
  const Dataset test = MakeInteractionData(400, 42);
  HistGradientBoostingRegressor::Options options;
  options.num_iterations = 150;
  options.validation_fraction = 0.2;
  options.early_stopping_rounds = 10;
  options.min_samples_leaf = 5;
  HistGradientBoostingRegressor with_es(options);
  ASSERT_TRUE(with_es.Fit(train).ok());
  EXPECT_LT(Mae(with_es, test), 1.5);
}

TEST(HistGradientBoostingTest, EarlyStoppingOptionValidation) {
  const Dataset data = MakeStepData(50, 43);
  {
    HistGradientBoostingRegressor::Options options;
    options.validation_fraction = 1.0;
    HistGradientBoostingRegressor model(options);
    EXPECT_FALSE(model.Fit(data).ok());
  }
  {
    HistGradientBoostingRegressor::Options options;
    options.validation_fraction = 0.2;
    options.early_stopping_rounds = 0;
    HistGradientBoostingRegressor model(options);
    EXPECT_FALSE(model.Fit(data).ok());
  }
}

TEST(RandomForestTest, PredictBatchMatchesPerRowPredict) {
  RandomForestRegressor::Options options;
  options.num_estimators = 20;
  RandomForestRegressor forest(options);
  const Dataset train = MakeInteractionData(300, 17, 1.0);
  const Dataset test = MakeInteractionData(100, 18);
  ASSERT_TRUE(forest.Fit(train).ok());
  const std::vector<double> batch =
      forest.PredictBatch(test.x()).ValueOrDie();
  ASSERT_EQ(batch.size(), test.num_rows());
  // The dedicated override must accumulate in the exact per-row order, so
  // the results are bit-identical, not merely close.
  for (size_t r = 0; r < test.num_rows(); ++r) {
    EXPECT_EQ(batch[r], forest.Predict(test.x().Row(r)).ValueOrDie()) << r;
  }
  EXPECT_TRUE(forest.PredictBatch(Matrix(0, 2)).ValueOrDie().empty());

  RandomForestRegressor unfitted;
  EXPECT_EQ(unfitted.PredictBatch(test.x()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(HistGradientBoostingTest, PredictBatchMatchesPerRowPredict) {
  HistGradientBoostingRegressor model;
  const Dataset train = MakeInteractionData(500, 27);
  const Dataset test = MakeInteractionData(100, 28);
  ASSERT_TRUE(model.Fit(train).ok());
  const std::vector<double> batch =
      model.PredictBatch(test.x()).ValueOrDie();
  ASSERT_EQ(batch.size(), test.num_rows());
  for (size_t r = 0; r < test.num_rows(); ++r) {
    EXPECT_EQ(batch[r], model.Predict(test.x().Row(r)).ValueOrDie()) << r;
  }
  EXPECT_TRUE(model.PredictBatch(Matrix(0, 2)).ValueOrDie().empty());
  EXPECT_EQ(model.PredictBatch(Matrix(3, 5)).status().code(),
            StatusCode::kInvalidArgument);

  HistGradientBoostingRegressor unfitted;
  EXPECT_EQ(unfitted.PredictBatch(test.x()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BinMapperTest, QuantileBinsAreMonotone) {
  Rng rng(30);
  Matrix x(1000, 1);
  for (size_t r = 0; r < 1000; ++r) x(r, 0) = rng.Normal(0, 1);
  BinMapper mapper;
  mapper.Compute(x, 16);
  EXPECT_LE(mapper.BinCount(0), 16u);
  // Bins are monotone in the raw value.
  uint16_t prev = mapper.BinOf(0, -10.0);
  for (double v = -10.0; v <= 10.0; v += 0.25) {
    const uint16_t bin = mapper.BinOf(0, v);
    EXPECT_GE(bin, prev);
    prev = bin;
  }
}

TEST(BinMapperTest, FewDistinctValuesOneBinEach) {
  Matrix x(6, 1);
  const double values[] = {1, 1, 2, 2, 3, 3};
  for (size_t r = 0; r < 6; ++r) x(r, 0) = values[r];
  BinMapper mapper;
  mapper.Compute(x, 256);
  EXPECT_EQ(mapper.BinCount(0), 3u);
  EXPECT_NE(mapper.BinOf(0, 1.0), mapper.BinOf(0, 2.0));
  EXPECT_NE(mapper.BinOf(0, 2.0), mapper.BinOf(0, 3.0));
}

TEST(BinMapperTest, UpperBoundBracketsBin) {
  Matrix x(4, 1);
  const double values[] = {0.0, 1.0, 2.0, 3.0};
  for (size_t r = 0; r < 4; ++r) x(r, 0) = values[r];
  BinMapper mapper;
  mapper.Compute(x, 256);
  for (double v : values) {
    const uint16_t bin = mapper.BinOf(0, v);
    EXPECT_LE(v, mapper.UpperBound(0, bin));
  }
}

}  // namespace
}  // namespace ml
}  // namespace nextmaint
