// Property suite for the binned training core (docs/binned-training.md):
// randomized corpora — degenerate constant and duplicate-heavy columns,
// feature cardinalities on both sides of the 256-distinct-value bin-width
// boundary — must train to byte-identical models on both cores, and the
// DataPartition leaf ranges of a completed grow must never lose a sample.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/binned_dataset.h"
#include "ml/histogram.h"
#include "ml/registry.h"

namespace nextmaint {
namespace ml {
namespace {

/// Ways a feature column can be shaped; the degenerate ones are the bin
/// mapper's edge cases.
enum class ColumnKind {
  kConstant,       // single distinct value -> single-bin mapper
  kFewDistinct,    // heavy duplicates, far fewer values than bins
  kContinuous,     // effectively all-distinct
  kManyDistinct,   // > 256 distinct values -> wide (uint16_t) columns
};

/// Builds a randomized corpus: `rows` rows of `kinds`-shaped feature
/// columns plus a target correlated with the non-degenerate features.
Dataset MakeCorpus(Rng* rng, size_t rows,
                   const std::vector<ColumnKind>& kinds) {
  std::vector<std::vector<double>> columns;
  for (const ColumnKind kind : kinds) {
    std::vector<double> column(rows);
    switch (kind) {
      case ColumnKind::kConstant: {
        const double value = rng->Uniform(-5, 5);
        std::fill(column.begin(), column.end(), value);
        break;
      }
      case ColumnKind::kFewDistinct:
        for (double& cell : column) {
          cell = static_cast<double>(rng->UniformInt(uint64_t{6}));
        }
        break;
      case ColumnKind::kContinuous:
        for (double& cell : column) cell = rng->Uniform(0, 100);
        break;
      case ColumnKind::kManyDistinct:
        // i + jitter keeps every cell distinct, so distinct count == rows.
        for (size_t i = 0; i < rows; ++i) {
          column[i] = static_cast<double>(i) + rng->Uniform(0.0, 0.5);
        }
        break;
    }
    columns.push_back(std::move(column));
  }
  Dataset d;
  std::vector<double> row(kinds.size());
  for (size_t r = 0; r < rows; ++r) {
    double target = 0.0;
    for (size_t f = 0; f < kinds.size(); ++f) {
      row[f] = columns[f][r];
      target += (f + 1) * 0.3 * row[f];
    }
    d.AddRow(std::span<const double>(row.data(), row.size()),
             target + rng->Normal(0, 0.25));
  }
  return d;
}

std::string TrainedBytes(const std::string& algorithm, const ParamMap& params,
                         TreeCore core, const Dataset& train) {
  TrainingBackend backend;
  backend.core = core;
  auto model = MakeRegressor(algorithm, params, backend).MoveValueOrDie();
  EXPECT_TRUE(model->Fit(train).ok()) << algorithm;
  std::ostringstream out;
  EXPECT_TRUE(model->Save(out).ok()) << algorithm;
  return std::move(out).str();
}

// ---------------------------------------------------------------------------
// Cross-core equality on randomized corpora.

TEST(BinnedPropertyTest, RandomizedCorporaTrainIdenticallyAcrossCores) {
  const std::vector<std::string> algorithms = {"Tree", "RF", "XGB"};
  Rng rng(20260808);
  for (int trial = 0; trial < 12; ++trial) {
    // Random fleet-corpus size and a random mix of column shapes, always
    // including at least one degenerate column.
    const size_t rows = 30 + rng.UniformInt(uint64_t{170});
    std::vector<ColumnKind> kinds = {ColumnKind::kConstant};
    const size_t extra = 1 + rng.UniformInt(uint64_t{3});
    for (size_t f = 0; f < extra; ++f) {
      kinds.push_back(
          static_cast<ColumnKind>(rng.UniformInt(uint64_t{4})));
    }
    const Dataset train = MakeCorpus(&rng, rows, kinds);
    const ParamMap params = {{"num_estimators", 8},
                             {"num_iterations", 8},
                             {"max_depth", 5},
                             {"max_bins", 64},
                             {"min_samples_leaf", 2}};
    for (const std::string& algorithm : algorithms) {
      EXPECT_EQ(TrainedBytes(algorithm, params, TreeCore::kRowOriented, train),
                TrainedBytes(algorithm, params, TreeCore::kBinned, train))
          << algorithm << " diverged on trial " << trial << " (" << rows
          << " rows, " << kinds.size() << " features)";
    }
  }
}

// Crossing the 256-distinct boundary flips the binned columns from uint8_t
// to uint16_t storage; the numbers the grower sees must not change.
TEST(BinnedPropertyTest, WideBinCountsCrossTheNarrowStorageBoundary) {
  Rng rng(55);
  const Dataset train =
      MakeCorpus(&rng, 400,
                 {ColumnKind::kManyDistinct, ColumnKind::kFewDistinct});

  // Pin the storage-width dispatch itself.
  BinMapper mapper;
  mapper.Compute(train.x(), /*max_bins=*/400);
  ASSERT_GT(mapper.BinCount(0), 256u);
  ASSERT_LE(mapper.BinCount(1), 256u);
  BinnedDataset binned;
  binned.Build(train.x(), mapper);
  EXPECT_FALSE(binned.IsNarrow(0));
  EXPECT_TRUE(binned.IsNarrow(1));
  for (size_t r = 0; r < train.num_rows(); ++r) {
    EXPECT_EQ(binned.Bin(0, r), mapper.BinOf(0, train.x()(r, 0)));
  }

  // Both sides of the boundary train identically across cores.
  for (const double max_bins : {128.0, 400.0}) {
    const ParamMap params = {{"num_iterations", 10},
                             {"max_depth", 4},
                             {"max_bins", max_bins}};
    EXPECT_EQ(TrainedBytes("XGB", params, TreeCore::kRowOriented, train),
              TrainedBytes("XGB", params, TreeCore::kBinned, train))
        << "max_bins=" << max_bins;
    EXPECT_EQ(TrainedBytes("RF",
                           {{"num_estimators", 6},
                            {"max_depth", 4},
                            {"max_bins", max_bins}},
                           TreeCore::kRowOriented, train),
              TrainedBytes("RF",
                           {{"num_estimators", 6},
                            {"max_depth", 4},
                            {"max_bins", max_bins}},
                           TreeCore::kBinned, train))
        << "max_bins=" << max_bins;
  }
}

// ---------------------------------------------------------------------------
// DataPartition: the grower's in-place permutation must conserve the row
// multiset, and the recorded leaf ranges must tile it exactly.

std::map<uint32_t, size_t> RowMultiset(const DataPartition& partition) {
  std::map<uint32_t, size_t> counts;
  for (const uint32_t row : partition.indices()) ++counts[row];
  return counts;
}

TEST(BinnedPropertyTest, PartitionSplitConservesTheRowMultiset) {
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    // Bootstrap-style multiset: random rows drawn with replacement.
    const size_t n = 5 + rng.UniformInt(uint64_t{60});
    std::vector<size_t> rows(n);
    for (size_t& row : rows) row = rng.UniformInt(uint64_t{40});
    DataPartition partition;
    partition.Reset(rows);
    ASSERT_EQ(partition.size(), n);
    const std::map<uint32_t, size_t> before = RowMultiset(partition);

    // A chain of random nested splits touching random sub-ranges.
    const uint32_t pivot1 = static_cast<uint32_t>(rng.UniformInt(uint64_t{40}));
    const size_t mid = partition.Split(
        0, n, [&](uint32_t row) { return row < pivot1; });
    ASSERT_LE(mid, n);
    const uint32_t pivot2 = static_cast<uint32_t>(rng.UniformInt(uint64_t{40}));
    partition.Split(mid, n, [&](uint32_t row) { return row % 2 == 0 &&
                                                       row < pivot2; });
    EXPECT_EQ(RowMultiset(partition), before) << "trial " << trial;
  }
}

TEST(BinnedPropertyTest, LeavesCoverAllDetectsLostAndDuplicatedRanges) {
  DataPartition partition;
  partition.Reset(size_t{10});

  // Exact in-order tiling passes.
  partition.AddLeaf(0, 4);
  partition.AddLeaf(4, 9);
  partition.AddLeaf(9, 10);
  EXPECT_TRUE(partition.LeavesCoverAll());

  // A gap (lost samples) fails.
  partition.Reset(size_t{10});
  partition.AddLeaf(0, 4);
  partition.AddLeaf(5, 10);
  EXPECT_FALSE(partition.LeavesCoverAll());

  // An overlap (double-counted samples) fails.
  partition.Reset(size_t{10});
  partition.AddLeaf(0, 6);
  partition.AddLeaf(5, 10);
  EXPECT_FALSE(partition.LeavesCoverAll());

  // A truncated tiling (missing tail) fails.
  partition.Reset(size_t{10});
  partition.AddLeaf(0, 4);
  EXPECT_FALSE(partition.LeavesCoverAll());

  // An empty leaf range can never appear in a completed grow.
  partition.Reset(size_t{10});
  partition.AddLeaf(0, 10);
  partition.AddLeaf(10, 10);
  EXPECT_FALSE(partition.LeavesCoverAll());
}

// End-to-end: a completed grow on a randomized corpus records leaf ranges
// that tile every bootstrap sample exactly once.
TEST(BinnedPropertyTest, CompletedGrowTilesEverySample) {
  Rng rng(123);
  const Dataset train = MakeCorpus(
      &rng, 160, {ColumnKind::kContinuous, ColumnKind::kFewDistinct,
                  ColumnKind::kConstant});
  BinMapper mapper;
  mapper.Compute(train.x(), /*max_bins=*/64);
  const HistogramLayout layout(mapper);
  BinnedDataset binned;
  binned.Build(train.x(), mapper);

  std::vector<size_t> bootstrap(train.num_rows());
  for (size_t& row : bootstrap) row = rng.UniformInt(train.num_rows());
  DataPartition partition;
  partition.Reset(bootstrap);
  const std::map<uint32_t, size_t> before = RowMultiset(partition);

  GrowSpec spec;
  spec.depth_limited = true;
  spec.max_depth = 6;
  spec.min_samples_leaf = 2;
  const std::vector<GrowNode> nodes = GrowHistTree(
      binned, mapper, layout, train.y(), &partition, spec);
  ASSERT_FALSE(nodes.empty());
  EXPECT_TRUE(partition.LeavesCoverAll());
  EXPECT_EQ(RowMultiset(partition), before);

  // Leaf range sizes sum to the sample count.
  size_t covered = 0;
  for (const auto& [begin, end] : partition.leaf_ranges()) {
    ASSERT_LT(begin, end);
    covered += end - begin;
  }
  EXPECT_EQ(covered, train.num_rows());
}

}  // namespace
}  // namespace ml
}  // namespace nextmaint
