// Tests for k-fold splitting, parameter grids and grid search, plus the
// model registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "ml/linear_regression.h"
#include "ml/model_selection.h"
#include "ml/registry.h"

namespace nextmaint {
namespace ml {
namespace {

TEST(KFoldTest, PartitionsAllIndicesExactlyOnce) {
  const auto splits = KFoldSplits(23, 5, /*shuffle=*/true, 42).ValueOrDie();
  ASSERT_EQ(splits.size(), 5u);
  std::set<size_t> seen;
  size_t total = 0;
  for (const FoldSplit& split : splits) {
    for (size_t i : split.test_indices) {
      EXPECT_TRUE(seen.insert(i).second) << "index " << i << " repeated";
    }
    total += split.test_indices.size();
    // Train + test partition [0, n).
    EXPECT_EQ(split.train_indices.size() + split.test_indices.size(), 23u);
  }
  EXPECT_EQ(total, 23u);
  EXPECT_EQ(*seen.rbegin(), 22u);
}

TEST(KFoldTest, FoldSizesDifferByAtMostOne) {
  const auto splits = KFoldSplits(23, 5, true, 1).ValueOrDie();
  size_t min_size = 99, max_size = 0;
  for (const FoldSplit& split : splits) {
    min_size = std::min(min_size, split.test_indices.size());
    max_size = std::max(max_size, split.test_indices.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(KFoldTest, TrainAndTestDisjoint) {
  const auto splits = KFoldSplits(20, 4, true, 7).ValueOrDie();
  for (const FoldSplit& split : splits) {
    std::set<size_t> train(split.train_indices.begin(),
                           split.train_indices.end());
    for (size_t i : split.test_indices) {
      EXPECT_EQ(train.count(i), 0u);
    }
  }
}

TEST(KFoldTest, UnshuffledIsContiguous) {
  const auto splits = KFoldSplits(10, 2, /*shuffle=*/false).ValueOrDie();
  EXPECT_EQ(splits[0].test_indices,
            (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(splits[1].test_indices,
            (std::vector<size_t>{5, 6, 7, 8, 9}));
}

TEST(KFoldTest, ShuffleIsSeedDeterministic) {
  const auto a = KFoldSplits(50, 5, true, 9).ValueOrDie();
  const auto b = KFoldSplits(50, 5, true, 9).ValueOrDie();
  EXPECT_EQ(a[0].test_indices, b[0].test_indices);
  const auto c = KFoldSplits(50, 5, true, 10).ValueOrDie();
  EXPECT_NE(a[0].test_indices, c[0].test_indices);
}

TEST(KFoldTest, ErrorCases) {
  EXPECT_FALSE(KFoldSplits(10, 1, true).ok());
  EXPECT_FALSE(KFoldSplits(3, 5, true).ok());
}

TEST(ParamGridTest, ExpandIsCartesianProduct) {
  ParamGrid grid;
  grid.Add("a", {1, 2}).Add("b", {10, 20, 30});
  const std::vector<ParamMap> points = grid.Expand();
  EXPECT_EQ(points.size(), 6u);
  std::set<std::pair<double, double>> combos;
  for (const ParamMap& p : points) {
    combos.insert({p.at("a"), p.at("b")});
  }
  EXPECT_EQ(combos.size(), 6u);
}

TEST(ParamGridTest, EmptyGridExpandsToOneEmptyPoint) {
  ParamGrid grid;
  const std::vector<ParamMap> points = grid.Expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].empty());
}

TEST(ParamGridTest, AddOverwritesDimension) {
  ParamGrid grid;
  grid.Add("a", {1, 2, 3});
  grid.Add("a", {9});
  EXPECT_EQ(grid.Expand().size(), 1u);
  EXPECT_DOUBLE_EQ(grid.Expand()[0].at("a"), 9.0);
}

/// Quadratic data where ridge strength matters: the grid search should
/// prefer small l2 on clean linear data.
Dataset MakeSearchData() {
  Rng rng(3);
  Dataset d;
  for (int i = 0; i < 120; ++i) {
    const double x = rng.Uniform(-2, 2);
    const std::vector<double> row = {x};
    d.AddRow(std::span<const double>(row.data(), 1), 4.0 * x + 1.0);
  }
  return d;
}

TEST(GridSearchTest, PicksBestHyperparameter) {
  const Dataset data = MakeSearchData();
  RegressorFactory factory = [](const ParamMap& params) {
    return std::make_unique<LinearRegression>(
        LinearRegression::OptionsFromParams(params));
  };
  ParamGrid grid;
  grid.Add("l2", {0.0, 1000.0});
  const GridSearchResult result =
      GridSearchCV(factory, grid, data).ValueOrDie();
  EXPECT_DOUBLE_EQ(result.best_params.at("l2"), 0.0);
  EXPECT_EQ(result.all_points.size(), 2u);
  EXPECT_LT(result.best_score, 1e-6);
  // Every point records one score per fold.
  for (const GridPointResult& point : result.all_points) {
    EXPECT_EQ(point.fold_scores.size(), 5u);
  }
}

TEST(GridSearchTest, EmptyGridRunsPlainCv) {
  const Dataset data = MakeSearchData();
  RegressorFactory factory = [](const ParamMap&) {
    return std::make_unique<LinearRegression>();
  };
  const GridSearchResult result =
      GridSearchCV(factory, ParamGrid(), data).ValueOrDie();
  EXPECT_EQ(result.all_points.size(), 1u);
  EXPECT_TRUE(result.best_params.empty());
}

TEST(GridSearchTest, CustomScorer) {
  const Dataset data = MakeSearchData();
  RegressorFactory factory = [](const ParamMap&) {
    return std::make_unique<LinearRegression>();
  };
  size_t scorer_calls = 0;
  ScoreFunction scorer = [&scorer_calls](const std::vector<double>& truth,
                                         const std::vector<double>& pred)
      -> Result<double> {
    ++scorer_calls;
    double worst = 0.0;
    for (size_t i = 0; i < truth.size(); ++i) {
      worst = std::max(worst, std::abs(truth[i] - pred[i]));
    }
    return worst;
  };
  GridSearchOptions options;
  options.folds = 3;
  ASSERT_TRUE(
      GridSearchCV(factory, ParamGrid(), data, options, scorer).ok());
  EXPECT_EQ(scorer_calls, 3u);
}

TEST(GridSearchTest, ErrorCases) {
  const Dataset data = MakeSearchData();
  EXPECT_FALSE(GridSearchCV(nullptr, ParamGrid(), data).ok());
  RegressorFactory factory = [](const ParamMap&) {
    return std::make_unique<LinearRegression>();
  };
  EXPECT_FALSE(GridSearchCV(factory, ParamGrid(), Dataset()).ok());
  RegressorFactory null_factory = [](const ParamMap&) {
    return std::unique_ptr<Regressor>();
  };
  EXPECT_FALSE(GridSearchCV(null_factory, ParamGrid(), data).ok());
}

TEST(RegistryTest, BuildsEveryRegisteredModel) {
  for (const std::string& name : RegisteredModelNames()) {
    const auto model = MakeRegressor(name);
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_EQ(model.ValueOrDie()->name() == "Tree" ? "Tree" : name,
              model.ValueOrDie()->name());
  }
}

TEST(RegistryTest, UnknownNameFails) {
  EXPECT_EQ(MakeRegressor("SVM").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(MakeFactory("nope").ok());
}

TEST(RegistryTest, FactoryAppliesParams) {
  const RegressorFactory factory = MakeFactory("RF").ValueOrDie();
  const auto model = factory({{"num_estimators", 3}});
  ASSERT_NE(model, nullptr);
  Dataset d;
  const std::vector<double> row = {1.0};
  d.AddRow(std::span<const double>(row.data(), 1), 1.0);
  d.AddRow(std::span<const double>(row.data(), 1), 2.0);
  ASSERT_TRUE(model->Fit(d).ok());
}

TEST(RegistryTest, DefaultGridsHaveExpectedDimensions) {
  EXPECT_EQ(DefaultGridFor("LR").Expand().size(), 1u);  // no tunables
  EXPECT_GT(DefaultGridFor("RF").Expand().size(), 1u);
  EXPECT_GT(DefaultGridFor("XGB").Expand().size(), 1u);
  EXPECT_GT(DefaultGridFor("LSVR").Expand().size(), 1u);
  // Full-fidelity grids are strictly larger than the coarse ones.
  EXPECT_GT(DefaultGridFor("RF", 1).Expand().size(),
            DefaultGridFor("RF", 0).Expand().size());
}

}  // namespace
}  // namespace ml
}  // namespace nextmaint
