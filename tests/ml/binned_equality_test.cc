// The binned-vs-row differential suite (docs/binned-training.md): both
// training cores run the exact same histogram grower, so serialized model
// bytes and forecasts must be bit-identical across cores and thread counts
// for every learner in the tree zoo. A golden fingerprint file additionally
// pins the absolute model bytes so silent re-pins of the shared grower are
// caught; intentional re-pins are documented in the golden file header and
// applied with NEXTMAINT_REGEN_GOLDEN=1.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/binned_dataset.h"
#include "ml/registry.h"

namespace nextmaint {
namespace ml {
namespace {

/// One grid point of the differential sweep. `id` keys the golden file.
struct SweepConfig {
  std::string id;
  std::string algorithm;
  ParamMap params;
};

const std::vector<SweepConfig>& Grid() {
  static const std::vector<SweepConfig> kGrid = {
      {"RF_e20_d6_b32",
       "RF",
       {{"num_estimators", 20}, {"max_depth", 6}, {"max_bins", 32}}},
      {"RF_e10_d3_b256",
       "RF",
       {{"num_estimators", 10}, {"max_depth", 3}, {"max_bins", 256}}},
      {"XGB_i25_d4_b64",
       "XGB",
       {{"num_iterations", 25}, {"max_depth", 4}, {"max_bins", 64}}},
      {"XGB_i15_d2_b256",
       "XGB",
       {{"num_iterations", 15}, {"max_depth", 2}, {"max_bins", 256}}},
      {"Tree_d6_b128", "Tree", {{"max_depth", 6}, {"max_bins", 128}}},
  };
  return kGrid;
}

/// Deterministic fleet-shaped training data: a continuous utilization
/// column, a heavily duplicated quantized column, a small-cardinality
/// categorical-ish column and a noisy mixed column.
Dataset MakeFleetData(uint64_t seed, int rows) {
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < rows; ++i) {
    const double x0 = rng.Uniform(0, 12);
    const double x1 = 0.5 * static_cast<double>(rng.UniformInt(uint64_t{24}));
    const double x2 = static_cast<double>(rng.UniformInt(uint64_t{7}));
    const double x3 = rng.Uniform(-4, 4);
    const std::vector<double> row = {x0, x1, x2, x3};
    d.AddRow(std::span<const double>(row.data(), 4),
             30.0 - 1.5 * x0 - x1 + 0.5 * x2 * x2 + rng.Normal(0, 0.4));
  }
  return d;
}

/// Trains one model with the given core/thread configuration and returns
/// its serialized bytes (precision-17 text; byte equality pins the model).
std::string TrainedModelBytes(const SweepConfig& config, TreeCore core,
                              int threads, const Dataset& train,
                              std::shared_ptr<BinningCache> cache = nullptr) {
  ParamMap params = config.params;
  params["num_threads"] = static_cast<double>(threads);
  TrainingBackend backend;
  backend.core = core;
  backend.binning_cache = std::move(cache);
  auto model =
      MakeRegressor(config.algorithm, params, backend).MoveValueOrDie();
  EXPECT_TRUE(model->Fit(train).ok()) << config.id;
  std::ostringstream out;
  EXPECT_TRUE(model->Save(out).ok()) << config.id;
  return std::move(out).str();
}

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string GoldenPath() {
  return std::string(NEXTMAINT_ML_GOLDEN_DIR) + "/binned_equality.golden";
}

/// Parses "<config-id> <16-hex-digit-fingerprint>" lines; '#' comments and
/// blank lines are skipped.
std::map<std::string, std::string> ReadGolden() {
  std::map<std::string, std::string> golden;
  std::ifstream in(GoldenPath());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string id, fingerprint;
    fields >> id >> fingerprint;
    if (!id.empty() && !fingerprint.empty()) golden[id] = fingerprint;
  }
  return golden;
}

std::string HexFingerprint(uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

// ---------------------------------------------------------------------------
// Model bytes must be identical across cores and thread counts: the two
// cores share one grower, and the parallel split search reduces in a fixed
// candidate order, so neither knob may move a single byte.

TEST(BinnedEqualityTest, CoresAndThreadCountsProduceIdenticalModelBytes) {
  const Dataset train = MakeFleetData(1234, 240);
  for (const SweepConfig& config : Grid()) {
    const std::string reference =
        TrainedModelBytes(config, TreeCore::kRowOriented, 1, train);
    ASSERT_FALSE(reference.empty()) << config.id;
    EXPECT_EQ(reference,
              TrainedModelBytes(config, TreeCore::kRowOriented, 4, train))
        << config.id << ": row core diverges across thread counts";
    EXPECT_EQ(reference,
              TrainedModelBytes(config, TreeCore::kBinned, 1, train))
        << config.id << ": binned core diverges from row core";
    EXPECT_EQ(reference,
              TrainedModelBytes(config, TreeCore::kBinned, 4, train))
        << config.id << ": threaded binned core diverges from row core";
  }
}

TEST(BinnedEqualityTest, SharedBinningCacheDoesNotChangeModelBytes) {
  const Dataset train = MakeFleetData(777, 180);
  auto cache = std::make_shared<BinningCache>();
  for (const SweepConfig& config : Grid()) {
    const std::string uncached =
        TrainedModelBytes(config, TreeCore::kBinned, 1, train);
    EXPECT_EQ(uncached,
              TrainedModelBytes(config, TreeCore::kBinned, 1, train, cache))
        << config.id << ": cached binning changed the model";
  }
  // Five grid points over one matrix at three distinct max_bins settings:
  // the cache must have been consulted and reused.
  const BinningCache::Stats stats = cache->stats();
  EXPECT_EQ(stats.lookups, Grid().size());
  EXPECT_GT(stats.hits, 0u);
}

// Forecasts must be bit-identical, not merely near: serving compares
// checkpoint bytes, so a 1-ULP drift would surface as fleet-wide churn.
TEST(BinnedEqualityTest, ForecastsAreBitIdenticalAcrossCores) {
  const Dataset train = MakeFleetData(4321, 240);
  for (const SweepConfig& config : Grid()) {
    ParamMap row_params = config.params;
    row_params["num_threads"] = 1.0;
    TrainingBackend row_backend;
    row_backend.core = TreeCore::kRowOriented;
    auto row_model =
        MakeRegressor(config.algorithm, row_params, row_backend)
            .MoveValueOrDie();
    ASSERT_TRUE(row_model->Fit(train).ok()) << config.id;

    ParamMap binned_params = config.params;
    binned_params["num_threads"] = 4.0;
    TrainingBackend binned_backend;
    binned_backend.core = TreeCore::kBinned;
    auto binned_model =
        MakeRegressor(config.algorithm, binned_params, binned_backend)
            .MoveValueOrDie();
    ASSERT_TRUE(binned_model->Fit(train).ok()) << config.id;

    Rng rng(99);
    for (int i = 0; i < 50; ++i) {
      const std::vector<double> probe = {
          rng.Uniform(0, 12), 0.5 * static_cast<double>(rng.UniformInt(
                                        uint64_t{24})),
          static_cast<double>(rng.UniformInt(uint64_t{7})),
          rng.Uniform(-4, 4)};
      const auto span = std::span<const double>(probe.data(), 4);
      const double row_prediction = row_model->Predict(span).ValueOrDie();
      const double binned_prediction =
          binned_model->Predict(span).ValueOrDie();
      EXPECT_EQ(std::bit_cast<uint64_t>(row_prediction),
                std::bit_cast<uint64_t>(binned_prediction))
          << config.id << " probe " << i;
    }
  }
}

// Absolute pin: the grower's arithmetic is frozen by fingerprint. A diff
// here that is NOT an intentional re-pin is a regression; an intentional
// re-pin must update the golden header's changelog and regenerate with
// NEXTMAINT_REGEN_GOLDEN=1 (instructions in the golden file).
TEST(BinnedEqualityTest, ModelBytesMatchGoldenFingerprints) {
  const Dataset train = MakeFleetData(1234, 240);
  std::map<std::string, std::string> current;
  for (const SweepConfig& config : Grid()) {
    current[config.id] = HexFingerprint(
        Fnv1a(TrainedModelBytes(config, TreeCore::kBinned, 1, train)));
  }

  if (std::getenv("NEXTMAINT_REGEN_GOLDEN") != nullptr) {
    std::ifstream existing(GoldenPath());
    std::vector<std::string> header;
    std::string line;
    while (std::getline(existing, line)) {
      if (!line.empty() && line[0] == '#') header.push_back(line);
    }
    existing.close();
    std::ofstream out(GoldenPath(), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot rewrite " << GoldenPath();
    for (const std::string& kept : header) out << kept << "\n";
    for (const auto& [id, fingerprint] : current) {
      out << id << " " << fingerprint << "\n";
    }
    GTEST_SKIP() << "golden fingerprints regenerated at " << GoldenPath();
  }

  const std::map<std::string, std::string> golden = ReadGolden();
  ASSERT_FALSE(golden.empty())
      << "missing or empty golden file " << GoldenPath();
  for (const auto& [id, fingerprint] : current) {
    const auto it = golden.find(id);
    ASSERT_NE(it, golden.end()) << "no golden entry for " << id;
    EXPECT_EQ(it->second, fingerprint)
        << id << ": model bytes drifted from the golden pin; if this is an "
        << "intentional re-pin, document it in the golden header and rerun "
        << "with NEXTMAINT_REGEN_GOLDEN=1";
  }
  EXPECT_EQ(golden.size(), current.size())
      << "golden file has stale entries; regenerate it";
}

}  // namespace
}  // namespace ml
}  // namespace nextmaint
