// EarlyStopping (ml/early_stopping.h) unit tests, plus the grid-search
// integration: a plateaued sweep with early stopping must select the same
// winner as the full exhaustive sweep, just cheaper.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ml/early_stopping.h"
#include "ml/model_selection.h"
#include "ml/regressor.h"

namespace nextmaint {
namespace ml {
namespace {

// ---------------------------------------------------------------------------
// Plateau detector

TEST(EarlyStoppingTest, MonotoneImprovingMetricNeverStops) {
  EarlyStopping stopper(EarlyStopping::Options{/*patience=*/3,
                                               /*min_delta=*/1e-12});
  for (int round = 0; round < 200; ++round) {
    EXPECT_FALSE(stopper.Update(100.0 - round)) << "round " << round;
  }
  EXPECT_FALSE(stopper.stopped());
  EXPECT_EQ(stopper.rounds_observed(), 200);
  EXPECT_EQ(stopper.best_round(), 199);
  EXPECT_DOUBLE_EQ(stopper.best_metric(), 100.0 - 199);
}

TEST(EarlyStoppingTest, PlateauedMetricStopsWithinPatience) {
  const int patience = 4;
  EarlyStopping stopper(EarlyStopping::Options{patience, 1e-12});
  for (int round = 0; round < 5; ++round) {
    EXPECT_FALSE(stopper.Update(10.0 - round));
  }
  // Constant from here: exactly `patience` stale rounds, then stop.
  for (int stale = 1; stale < patience; ++stale) {
    EXPECT_FALSE(stopper.Update(6.0)) << "stale round " << stale;
  }
  EXPECT_TRUE(stopper.Update(6.0));
  EXPECT_TRUE(stopper.stopped());
  EXPECT_EQ(stopper.best_round(), 4);
  EXPECT_EQ(stopper.rounds_observed(), 5 + patience);
  // The detector never un-stops, even on a late improvement.
  EXPECT_TRUE(stopper.Update(0.0));
}

TEST(EarlyStoppingTest, ImprovementsBelowMinDeltaCountAsStale) {
  EarlyStopping stopper(EarlyStopping::Options{/*patience=*/2,
                                               /*min_delta=*/0.5});
  EXPECT_FALSE(stopper.Update(10.0));
  // Neither 9.6 nor 9.55 beats best - min_delta = 9.5: two stale rounds.
  EXPECT_FALSE(stopper.Update(9.6));
  EXPECT_TRUE(stopper.Update(9.55));
  EXPECT_DOUBLE_EQ(stopper.best_metric(), 10.0);
  EXPECT_EQ(stopper.best_round(), 0);
}

TEST(EarlyStoppingTest, ResetStartsAFreshStream) {
  EarlyStopping stopper(EarlyStopping::Options{1, 1e-12});
  EXPECT_FALSE(stopper.Update(5.0));
  EXPECT_TRUE(stopper.Update(5.0));
  stopper.Reset();
  EXPECT_FALSE(stopper.stopped());
  EXPECT_EQ(stopper.rounds_observed(), 0);
  EXPECT_EQ(stopper.best_round(), -1);
  EXPECT_EQ(stopper.best_metric(), std::numeric_limits<double>::infinity());
  EXPECT_FALSE(stopper.Update(7.0));
}

// ---------------------------------------------------------------------------
// Grid-search early stopping
//
// A constant model predicting its single hyper-parameter "c" against
// all-zero targets makes every fold's MAE exactly |c| — the CV score is a
// provable, deterministic function of the grid point, so both the full
// sweep's winner and the plateau behavior can be asserted exactly.

class ConstantModel final : public Regressor {
 public:
  explicit ConstantModel(double value) : value_(value) {}

  Result<double> Predict(std::span<const double> /*features*/) const override {
    return value_;
  }
  std::string name() const override { return "Const"; }
  bool is_fitted() const override { return fitted_; }
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<ConstantModel>(*this);
  }
  Status Save(std::ostream& /*out*/) const override {
    return Status::InvalidArgument("Const is a test-only model");
  }

 protected:
  Status FitImpl(const Dataset& /*train*/) override {
    fitted_ = true;
    return Status::OK();
  }

 private:
  double value_ = 0.0;
  bool fitted_ = false;
};

Dataset ZeroTargetData(int rows) {
  Dataset d;
  for (int i = 0; i < rows; ++i) {
    const std::vector<double> row = {static_cast<double>(i)};
    d.AddRow(std::span<const double>(row.data(), 1), 0.0);
  }
  return d;
}

RegressorFactory ConstantFactory() {
  return [](const ParamMap& params) -> std::unique_ptr<Regressor> {
    return std::make_unique<ConstantModel>(params.at("c"));
  };
}

TEST(GridSearchEarlyStoppingTest, PlateauedGridSelectsSameWinnerAsFullSweep) {
  // Scores descend to 2 then plateau: the truncated sweep must stop inside
  // the plateau having already recorded the full sweep's winner.
  ParamGrid grid;
  grid.Add("c", {6.0, 5.0, 4.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0});
  const Dataset train = ZeroTargetData(40);

  GridSearchOptions full_options;
  const GridSearchResult full =
      GridSearchCV(ConstantFactory(), grid, train, full_options)
          .ValueOrDie();
  EXPECT_FALSE(full.stopped_early);
  EXPECT_EQ(full.points_evaluated, 10u);

  GridSearchOptions stopped_options;
  stopped_options.early_stopping_patience = 3;
  const GridSearchResult stopped =
      GridSearchCV(ConstantFactory(), grid, train, stopped_options)
          .ValueOrDie();
  EXPECT_TRUE(stopped.stopped_early);
  EXPECT_LT(stopped.points_evaluated, full.points_evaluated);
  EXPECT_EQ(stopped.best_params.at("c"), full.best_params.at("c"));
  EXPECT_DOUBLE_EQ(stopped.best_score, full.best_score);
}

TEST(GridSearchEarlyStoppingTest, ImprovingGridRunsTheFullSweep) {
  ParamGrid grid;
  grid.Add("c", {9.0, 7.0, 5.0, 3.0, 1.0});
  const Dataset train = ZeroTargetData(40);
  GridSearchOptions options;
  options.early_stopping_patience = 2;
  const GridSearchResult result =
      GridSearchCV(ConstantFactory(), grid, train, options).ValueOrDie();
  EXPECT_FALSE(result.stopped_early);
  EXPECT_EQ(result.points_evaluated, 5u);
  EXPECT_EQ(result.best_params.at("c"), 1.0);
}

TEST(GridSearchEarlyStoppingTest, ZeroPatienceKeepsTheExhaustiveDefault) {
  ParamGrid grid;
  grid.Add("c", {3.0, 3.0, 3.0, 3.0, 3.0, 3.0});
  const Dataset train = ZeroTargetData(40);
  const GridSearchResult result =
      GridSearchCV(ConstantFactory(), grid, train).ValueOrDie();
  EXPECT_FALSE(result.stopped_early);
  EXPECT_EQ(result.points_evaluated, 6u);
}

}  // namespace
}  // namespace ml
}  // namespace nextmaint
