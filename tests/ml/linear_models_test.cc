// Tests for the two linear models: LinearRegression (OLS/ridge) and
// LinearSvr (epsilon-insensitive dual coordinate descent).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/linear_regression.h"
#include "ml/linear_svr.h"

namespace nextmaint {
namespace ml {
namespace {

/// y = 3 + 2*x0 - x1 plus optional noise.
Dataset MakeLinearData(size_t n, double noise_stddev, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-5, 5);
    const double x1 = rng.Uniform(0, 10);
    const double y = 3.0 + 2.0 * x0 - x1 + rng.Normal(0.0, noise_stddev);
    const std::vector<double> row = {x0, x1};
    d.AddRow(std::span<const double>(row.data(), 2), y);
  }
  return d;
}

TEST(LinearRegressionTest, RecoversExactCoefficients) {
  LinearRegression model;
  ASSERT_TRUE(model.Fit(MakeLinearData(200, 0.0, 1)).ok());
  ASSERT_TRUE(model.is_fitted());
  EXPECT_NEAR(model.weights()[0], 2.0, 1e-8);
  EXPECT_NEAR(model.weights()[1], -1.0, 1e-8);
  EXPECT_NEAR(model.intercept(), 3.0, 1e-8);
}

TEST(LinearRegressionTest, PredictsUnseenPoints) {
  LinearRegression model;
  ASSERT_TRUE(model.Fit(MakeLinearData(200, 0.0, 2)).ok());
  const std::vector<double> point = {1.0, 2.0};
  EXPECT_NEAR(model.Predict(std::span<const double>(point.data(), 2))
                  .ValueOrDie(),
              3.0 + 2.0 - 2.0, 1e-8);
}

TEST(LinearRegressionTest, RobustToNoise) {
  LinearRegression model;
  ASSERT_TRUE(model.Fit(MakeLinearData(5000, 0.5, 3)).ok());
  EXPECT_NEAR(model.weights()[0], 2.0, 0.05);
  EXPECT_NEAR(model.weights()[1], -1.0, 0.05);
}

TEST(LinearRegressionTest, RidgeShrinksTowardZero) {
  const Dataset data = MakeLinearData(100, 0.0, 4);
  LinearRegression plain;
  ASSERT_TRUE(plain.Fit(data).ok());
  LinearRegression::Options options;
  options.l2 = 1000.0;
  LinearRegression ridge(options);
  ASSERT_TRUE(ridge.Fit(data).ok());
  EXPECT_LT(std::fabs(ridge.weights()[0]), std::fabs(plain.weights()[0]));
  // The intercept is unpenalized: predictions at the feature mean stay
  // close to the target mean.
}

TEST(LinearRegressionTest, NoInterceptOption) {
  LinearRegression::Options options;
  options.fit_intercept = false;
  LinearRegression model(options);
  // y = 2x without intercept.
  Dataset d;
  for (double x = 1; x <= 5; ++x) {
    const std::vector<double> row = {x};
    d.AddRow(std::span<const double>(row.data(), 1), 2 * x);
  }
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_NEAR(model.weights()[0], 2.0, 1e-10);
  EXPECT_DOUBLE_EQ(model.intercept(), 0.0);
}

TEST(LinearRegressionTest, ConstantTargetGivesInterceptOnly) {
  Dataset d;
  for (double x = 0; x < 10; ++x) {
    const std::vector<double> row = {x};
    d.AddRow(std::span<const double>(row.data(), 1), 7.0);
  }
  LinearRegression model;
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_NEAR(model.weights()[0], 0.0, 1e-10);
  EXPECT_NEAR(model.intercept(), 7.0, 1e-10);
}

TEST(LinearRegressionTest, ErrorPaths) {
  LinearRegression model;
  EXPECT_FALSE(model.Fit(Dataset()).ok());
  EXPECT_FALSE(model.is_fitted());
  const std::vector<double> point = {1.0};
  EXPECT_EQ(model.Predict(std::span<const double>(point.data(), 1))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(model.Fit(MakeLinearData(50, 0.0, 5)).ok());
  EXPECT_EQ(model.Predict(std::span<const double>(point.data(), 1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // needs 2 features
}

TEST(LinearRegressionTest, RejectsNonFiniteFeatures) {
  Dataset d = MakeLinearData(10, 0.0, 6);
  Dataset poisoned = d;
  Matrix x = poisoned.x();
  x(0, 0) = std::nan("");
  poisoned = Dataset::Create(std::move(x), d.y()).ValueOrDie();
  LinearRegression model;
  EXPECT_FALSE(model.Fit(poisoned).ok());
}

TEST(LinearRegressionTest, CloneCarriesFittedState) {
  LinearRegression model;
  ASSERT_TRUE(model.Fit(MakeLinearData(100, 0.0, 7)).ok());
  const auto clone = model.Clone();
  ASSERT_TRUE(clone->is_fitted());
  const std::vector<double> point = {2.0, 3.0};
  EXPECT_DOUBLE_EQ(
      clone->Predict(std::span<const double>(point.data(), 2)).ValueOrDie(),
      model.Predict(std::span<const double>(point.data(), 2)).ValueOrDie());
}

TEST(LinearRegressionTest, OptionsFromParams) {
  const auto options = LinearRegression::OptionsFromParams({{"l2", 0.5}});
  EXPECT_DOUBLE_EQ(options.l2, 0.5);
}

TEST(LinearSvrTest, FitsCleanLinearData) {
  LinearSvr::Options options;
  options.c = 10.0;
  options.epsilon = 0.01;
  LinearSvr model(options);
  ASSERT_TRUE(model.Fit(MakeLinearData(500, 0.0, 11)).ok());
  EXPECT_NEAR(model.weights()[0], 2.0, 0.05);
  EXPECT_NEAR(model.weights()[1], -1.0, 0.05);
  EXPECT_NEAR(model.intercept(), 3.0, 0.2);
}

TEST(LinearSvrTest, PredictionErrorWithinTube) {
  LinearSvr::Options options;
  options.c = 10.0;
  options.epsilon = 0.5;
  LinearSvr model(options);
  const Dataset data = MakeLinearData(500, 0.0, 13);
  ASSERT_TRUE(model.Fit(data).ok());
  // On noiseless data the fit should be within ~epsilon everywhere.
  const std::vector<double> preds = model.PredictBatch(data.x()).ValueOrDie();
  double max_err = 0.0;
  for (size_t i = 0; i < preds.size(); ++i) {
    max_err = std::max(max_err, std::fabs(preds[i] - data.y()[i]));
  }
  EXPECT_LT(max_err, 1.0);
}

TEST(LinearSvrTest, InsensitiveToOutliersComparedToLr) {
  // One wild outlier: SVR's L1 loss bounds its influence; OLS chases it.
  Dataset data = MakeLinearData(100, 0.0, 17);
  const std::vector<double> outlier_row = {0.0, 0.0};
  data.AddRow(std::span<const double>(outlier_row.data(), 2), 1000.0);

  LinearRegression lr;
  ASSERT_TRUE(lr.Fit(data).ok());
  LinearSvr::Options options;
  options.c = 1.0;
  options.epsilon = 0.1;
  LinearSvr svr(options);
  ASSERT_TRUE(svr.Fit(data).ok());

  const std::vector<double> probe = {0.0, 0.0};
  const double lr_pred =
      lr.Predict(std::span<const double>(probe.data(), 2)).ValueOrDie();
  const double svr_pred =
      svr.Predict(std::span<const double>(probe.data(), 2)).ValueOrDie();
  // True value at the probe is 3.0.
  EXPECT_GT(std::fabs(lr_pred - 3.0), std::fabs(svr_pred - 3.0));
  EXPECT_NEAR(svr_pred, 3.0, 1.0);
}

TEST(LinearSvrTest, ConvergesAndReportsIterations) {
  LinearSvr model;
  ASSERT_TRUE(model.Fit(MakeLinearData(200, 0.1, 19)).ok());
  EXPECT_GT(model.iterations_run(), 0);
  EXPECT_LE(model.iterations_run(), model.options().max_iterations);
}

TEST(LinearSvrTest, InvalidOptionsRejected) {
  const Dataset data = MakeLinearData(10, 0.0, 23);
  {
    LinearSvr::Options options;
    options.c = 0.0;
    LinearSvr model(options);
    EXPECT_FALSE(model.Fit(data).ok());
  }
  {
    LinearSvr::Options options;
    options.epsilon = -1.0;
    LinearSvr model(options);
    EXPECT_FALSE(model.Fit(data).ok());
  }
}

TEST(LinearSvrTest, ErrorPaths) {
  LinearSvr model;
  EXPECT_FALSE(model.Fit(Dataset()).ok());
  const std::vector<double> point = {1.0, 2.0};
  EXPECT_EQ(model.Predict(std::span<const double>(point.data(), 2))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(LinearSvrTest, DeterministicGivenSeed) {
  const Dataset data = MakeLinearData(200, 0.2, 29);
  LinearSvr a, b;
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  ASSERT_EQ(a.weights().size(), b.weights().size());
  for (size_t i = 0; i < a.weights().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.weights()[i], b.weights()[i]);
  }
  EXPECT_DOUBLE_EQ(a.intercept(), b.intercept());
}

TEST(LinearSvrTest, OptionsFromParams) {
  const auto options =
      LinearSvr::OptionsFromParams({{"C", 50.0}, {"epsilon", 2.5}});
  EXPECT_DOUBLE_EQ(options.c, 50.0);
  EXPECT_DOUBLE_EQ(options.epsilon, 2.5);
}

TEST(LinearSvrTest, ConstantFeatureGetsNoWeight) {
  // Second feature constant: standardization maps it to zero, weight 0.
  Rng rng(31);
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(0, 1);
    const std::vector<double> row = {x, 5.0};
    d.AddRow(std::span<const double>(row.data(), 2), 2.0 * x);
  }
  LinearSvr model;
  ASSERT_TRUE(model.Fit(d).ok());
  EXPECT_NEAR(model.weights()[1], 0.0, 1e-9);
}

}  // namespace
}  // namespace ml
}  // namespace nextmaint
