// Round-trip tests for model persistence: every model in the zoo (plus the
// core BL predictor) must survive Save -> Load with bit-identical
// predictions, and the loader must reject corrupt input.

#include "ml/serialization.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "core/baseline.h"
#include "ml/registry.h"

namespace nextmaint {
namespace ml {
namespace {

Dataset MakeData(uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < 200; ++i) {
    const double x0 = rng.Uniform(0, 10);
    const double x1 = rng.Uniform(-3, 3);
    const std::vector<double> row = {x0, x1};
    d.AddRow(std::span<const double>(row.data(), 2),
             2.0 * x0 - x1 * x1 + rng.Normal(0, 0.2));
  }
  return d;
}

class SerializationRoundTripTest : public testing::TestWithParam<std::string> {
};

TEST_P(SerializationRoundTripTest, PredictionsSurviveRoundTrip) {
  const std::string name = GetParam();
  const Dataset data = MakeData(42);
  auto model = MakeRegressor(name).MoveValueOrDie();
  ASSERT_TRUE(model->Fit(data).ok());

  std::stringstream buffer;
  ASSERT_TRUE(model->Save(buffer).ok());

  auto reloaded = LoadRegressor(buffer).MoveValueOrDie();
  ASSERT_TRUE(reloaded->is_fitted());
  EXPECT_EQ(reloaded->name(), name);

  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> probe = {rng.Uniform(0, 10),
                                       rng.Uniform(-3, 3)};
    const auto span = std::span<const double>(probe.data(), 2);
    EXPECT_DOUBLE_EQ(model->Predict(span).ValueOrDie(),
                     reloaded->Predict(span).ValueOrDie());
  }
}

TEST_P(SerializationRoundTripTest, UnfittedModelRefusesToSave) {
  auto model = MakeRegressor(GetParam()).MoveValueOrDie();
  std::stringstream buffer;
  EXPECT_EQ(model->Save(buffer).code(), StatusCode::kFailedPrecondition);
}

INSTANTIATE_TEST_SUITE_P(AllModels, SerializationRoundTripTest,
                         testing::Values("LR", "LSVR", "Tree", "RF", "XGB"));

TEST(SerializationTest, HeaderValidation) {
  {
    std::stringstream in("wrong-magic v1 LR\n");
    EXPECT_EQ(ReadModelHeader(in).status().code(), StatusCode::kDataError);
  }
  {
    std::stringstream in("nextmaint-model v999 LR\n");
    EXPECT_EQ(ReadModelHeader(in).status().code(), StatusCode::kDataError);
  }
  {
    std::stringstream in("");
    EXPECT_FALSE(ReadModelHeader(in).ok());
  }
  {
    std::stringstream in("nextmaint-model v1 LR more");
    EXPECT_EQ(ReadModelHeader(in).ValueOrDie(), "LR");
  }
}

TEST(SerializationTest, UnknownModelNameFails) {
  std::stringstream in("nextmaint-model v1 Transformer\nend\n");
  EXPECT_EQ(LoadRegressor(in).status().code(), StatusCode::kNotFound);
}

TEST(SerializationTest, TruncatedBodyFails) {
  const Dataset data = MakeData(1);
  auto model = MakeRegressor("RF", {{"num_estimators", 3}}).MoveValueOrDie();
  ASSERT_TRUE(model->Fit(data).ok());
  std::stringstream buffer;
  ASSERT_TRUE(model->Save(buffer).ok());
  const std::string full = buffer.str();
  // Chop the tail off: the loader must fail, not crash.
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_FALSE(LoadRegressor(truncated).ok());
}

TEST(SerializationTest, CorruptTreeIndicesRejected) {
  // Hand-crafted tree whose child index points out of range.
  std::stringstream in(
      "nextmaint-model v1 Tree\n"
      "features 1\n"
      "nodes 1\n"
      "5 6 0 0.5 1.0\n"
      "end\n");
  EXPECT_EQ(LoadRegressor(in).status().code(), StatusCode::kDataError);
}

TEST(SerializationTest, BaselineRoundTripViaLoadAnyModel) {
  core::BaselinePredictor model(12'345.0, 1.0 / 2'000'000.0);
  std::stringstream buffer;
  ASSERT_TRUE(model.Save(buffer).ok());
  auto reloaded = core::LoadAnyModel(buffer).MoveValueOrDie();
  EXPECT_EQ(reloaded->name(), "BL");
  const std::vector<double> probe = {0.5};  // L/T_v = 0.5
  const auto span = std::span<const double>(probe.data(), 1);
  EXPECT_DOUBLE_EQ(model.Predict(span).ValueOrDie(),
                   reloaded->Predict(span).ValueOrDie());
}

TEST(SerializationTest, LoadAnyModelHandlesMlModels) {
  const Dataset data = MakeData(3);
  auto model = MakeRegressor("LR").MoveValueOrDie();
  ASSERT_TRUE(model->Fit(data).ok());
  std::stringstream buffer;
  ASSERT_TRUE(model->Save(buffer).ok());
  auto reloaded = core::LoadAnyModel(buffer).MoveValueOrDie();
  EXPECT_EQ(reloaded->name(), "LR");
}

TEST(SerializationTest, BaselineRejectsNonPositiveParams) {
  std::stringstream in(
      "nextmaint-model v1 BL\navg -5\nlscale 1\nend\n");
  EXPECT_EQ(core::LoadAnyModel(in).status().code(), StatusCode::kDataError);
}

TEST(SerializationTest, MultipleModelsInOneStream) {
  // The format is self-delimiting: two models written back to back load
  // sequentially (how the scheduler persists a whole fleet).
  const Dataset data = MakeData(9);
  auto a = MakeRegressor("LR").MoveValueOrDie();
  auto b = MakeRegressor("Tree").MoveValueOrDie();
  ASSERT_TRUE(a->Fit(data).ok());
  ASSERT_TRUE(b->Fit(data).ok());
  std::stringstream buffer;
  ASSERT_TRUE(a->Save(buffer).ok());
  ASSERT_TRUE(b->Save(buffer).ok());

  auto first = LoadRegressor(buffer).MoveValueOrDie();
  auto second = LoadRegressor(buffer).MoveValueOrDie();
  EXPECT_EQ(first->name(), "LR");
  EXPECT_EQ(second->name(), "Tree");
}

}  // namespace
}  // namespace ml
}  // namespace nextmaint
