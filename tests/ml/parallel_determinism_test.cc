// The determinism contract behind every parallel hot path: training and
// forecasting with threads=1 and threads=4 must produce *bit-identical*
// models, predictions, importances and paper metrics (E_MRE / E_Global).
// Any future performance PR that breaks a reduction order breaks this
// suite, not production forecasts. See docs/parallelism.md.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/parallel.h"
#include "core/dataset_builder.h"
#include "core/old_vehicle.h"
#include "core/scheduler.h"
#include "ml/hist_gradient_boosting.h"
#include "ml/random_forest.h"
#include "telematics/fleet.h"

namespace nextmaint {
namespace {

constexpr double kTv = 500'000.0;

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

data::DailySeries SimulatedVehicle(uint64_t seed, int days) {
  Rng rng(seed);
  telem::VehicleProfile profile = telem::DefaultFleetProfiles(1, &rng)[0];
  profile.maintenance_interval_s = kTv;
  Rng sim_rng(seed * 7 + 3);
  return telem::SimulateVehicle(profile, Day(0), days, 0.0, &sim_rng)
      .ValueOrDie()
      .utilization;
}

/// The synthetic-fleet training matrix used by the model-level tests:
/// large enough (> 2000 rows) that hist-GB's parallel split search engages
/// on the root levels.
const ml::Dataset& FleetTrainingData() {
  static const ml::Dataset* const kData = [] {
    core::DatasetOptions options;
    options.window = 5;
    core::ResamplingOptions resampling;
    resampling.num_shifts = 2;
    return new ml::Dataset(
        core::BuildResampledDataset(SimulatedVehicle(11, 900), kTv, options,
                                    resampling)
            .ValueOrDie());
  }();
  return *kData;
}

std::string Serialized(const ml::Regressor& model) {
  std::ostringstream out;
  const Status status = model.Save(out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

std::vector<double> PredictAll(const ml::Regressor& model,
                               const ml::Dataset& data) {
  std::vector<double> preds;
  preds.reserve(data.num_rows());
  for (size_t r = 0; r < data.num_rows(); ++r) {
    preds.push_back(model.Predict(data.x().Row(r)).ValueOrDie());
  }
  return preds;
}

TEST(ParallelDeterminismTest, RandomForestSerialVsParallelBitIdentical) {
  const ml::Dataset& train = FleetTrainingData();
  ml::RandomForestRegressor::Options options;
  options.num_estimators = 30;
  options.max_depth = 8;
  options.seed = 42;

  options.num_threads = 1;
  ml::RandomForestRegressor serial(options);
  options.num_threads = 4;
  ml::RandomForestRegressor parallel(options);
  ASSERT_TRUE(serial.Fit(train).ok());
  ASSERT_TRUE(parallel.Fit(train).ok());

  // Identical trees (bitwise, via the text serialization)...
  EXPECT_EQ(Serialized(serial), Serialized(parallel));
  // ... identical predictions (exact double equality, not tolerance) ...
  EXPECT_EQ(PredictAll(serial, train), PredictAll(parallel, train));
  // ... identical impurity importances and out-of-bag error.
  EXPECT_EQ(serial.FeatureImportances(), parallel.FeatureImportances());
  ASSERT_FALSE(std::isnan(serial.oob_mae()));
  EXPECT_EQ(serial.oob_mae(), parallel.oob_mae());
}

TEST(ParallelDeterminismTest, RandomForestSpreadIdenticalToo) {
  const ml::Dataset& train = FleetTrainingData();
  ml::RandomForestRegressor::Options options;
  options.num_estimators = 15;
  options.num_threads = 1;
  ml::RandomForestRegressor serial(options);
  options.num_threads = 3;  // a count that does not divide the tree count
  ml::RandomForestRegressor parallel(options);
  ASSERT_TRUE(serial.Fit(train).ok());
  ASSERT_TRUE(parallel.Fit(train).ok());
  const auto a = serial.PredictWithSpread(train.x().Row(0)).ValueOrDie();
  const auto b = parallel.PredictWithSpread(train.x().Row(0)).ValueOrDie();
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
}

TEST(ParallelDeterminismTest, HistGradientBoostingSerialVsParallel) {
  const ml::Dataset& train = FleetTrainingData();
  ml::HistGradientBoostingRegressor::Options options;
  options.num_iterations = 40;
  options.max_depth = 6;
  options.max_bins = 64;

  options.num_threads = 1;
  ml::HistGradientBoostingRegressor serial(options);
  options.num_threads = 4;
  ml::HistGradientBoostingRegressor parallel(options);
  ASSERT_TRUE(serial.Fit(train).ok());
  ASSERT_TRUE(parallel.Fit(train).ok());

  EXPECT_EQ(serial.tree_count(), parallel.tree_count());
  EXPECT_EQ(Serialized(serial), Serialized(parallel));
  EXPECT_EQ(PredictAll(serial, train), PredictAll(parallel, train));
  EXPECT_EQ(serial.FeatureImportances(), parallel.FeatureImportances());
  // The per-stage loss curve pins down every intermediate gradient pass,
  // not just the final ensemble.
  EXPECT_EQ(serial.training_loss_curve(), parallel.training_loss_curve());
}

TEST(ParallelDeterminismTest, HistGradientBoostingWithEarlyStopping) {
  const ml::Dataset& train = FleetTrainingData();
  ml::HistGradientBoostingRegressor::Options options;
  options.num_iterations = 60;
  options.validation_fraction = 0.2;
  options.early_stopping_rounds = 5;

  options.num_threads = 1;
  ml::HistGradientBoostingRegressor serial(options);
  options.num_threads = 4;
  ml::HistGradientBoostingRegressor parallel(options);
  ASSERT_TRUE(serial.Fit(train).ok());
  ASSERT_TRUE(parallel.Fit(train).ok());

  // Early stopping must trip at the same boosting stage.
  EXPECT_EQ(serial.tree_count(), parallel.tree_count());
  EXPECT_EQ(serial.validation_loss_curve(), parallel.validation_loss_curve());
  EXPECT_EQ(Serialized(serial), Serialized(parallel));
}

core::SchedulerOptions SchedulerOptionsWithThreads(int num_threads) {
  core::SchedulerOptions options;
  options.maintenance_interval_s = kTv;
  options.window = 3;
  options.algorithms = {"BL", "LR", "RF"};
  options.unified_algorithm = "XGB";
  options.selection.tune = false;
  options.selection.resampling_shifts = 0;
  options.num_threads = num_threads;
  return options;
}

core::FleetScheduler TrainedScheduler(int num_threads) {
  core::FleetScheduler scheduler(SchedulerOptionsWithThreads(num_threads));
  // Mixed fleet: several old vehicles (per-vehicle selection), one
  // semi-new, one new — every training branch runs.
  const struct {
    const char* id;
    uint64_t seed;
    int days;
  } kFleet[] = {
      {"old1", 1, 700}, {"old2", 2, 700},  {"old3", 3, 650},
      {"old4", 5, 700}, {"semi", 8, 60}, {"new", 9, 8},
  };
  for (const auto& vehicle : kFleet) {
    EXPECT_TRUE(
        scheduler.RegisterVehicle(vehicle.id, Day(0)).ok());
    EXPECT_TRUE(scheduler
                    .IngestSeries(vehicle.id,
                                  SimulatedVehicle(vehicle.seed, vehicle.days))
                    .ok());
  }
  const Status trained = scheduler.TrainAll();
  EXPECT_TRUE(trained.ok()) << trained.ToString();
  return scheduler;
}

TEST(ParallelDeterminismTest, FleetSchedulerForecastsBitIdentical) {
  const core::FleetScheduler serial = TrainedScheduler(1);
  const core::FleetScheduler parallel = TrainedScheduler(4);

  const auto serial_forecasts = serial.FleetForecast().ValueOrDie();
  const auto parallel_forecasts = parallel.FleetForecast().ValueOrDie();
  ASSERT_EQ(serial_forecasts.size(), parallel_forecasts.size());
  ASSERT_GE(serial_forecasts.size(), 4u);
  for (size_t i = 0; i < serial_forecasts.size(); ++i) {
    const core::MaintenanceForecast& a = serial_forecasts[i];
    const core::MaintenanceForecast& b = parallel_forecasts[i];
    EXPECT_EQ(a.vehicle_id, b.vehicle_id);
    EXPECT_EQ(a.category, b.category);
    EXPECT_EQ(a.model_name, b.model_name);
    EXPECT_EQ(a.days_left, b.days_left);  // exact, not approximate
    EXPECT_EQ(a.usage_seconds_left, b.usage_seconds_left);
    EXPECT_EQ(a.predicted_date, b.predicted_date);
  }

  // The persisted per-vehicle models must match byte for byte as well.
  const auto checkpoint_bytes = [](const core::FleetScheduler& scheduler,
                                   const std::string& name) {
    const std::string path = ::testing::TempDir() + "/" + name;
    EXPECT_TRUE(scheduler.SaveCheckpoint(path).ok());
    std::ifstream in(path);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    std::remove(path.c_str());
    return bytes.str();
  };
  EXPECT_EQ(checkpoint_bytes(serial, "determinism_serial.txt"),
            checkpoint_bytes(parallel, "determinism_parallel.txt"));
}

TEST(ParallelDeterminismTest, PaperMetricsUnchangedByThreadCount) {
  const data::DailySeries series = SimulatedVehicle(4, 700);
  core::OldVehicleOptions options;
  options.window = 3;
  options.tune = false;
  options.resampling_shifts = 0;

  // The process-wide default drives model-internal parallelism when no
  // explicit per-model count is set (as in the evaluation protocol).
  ThreadPool::SetDefaultThreadCount(1);
  const auto serial =
      core::EvaluateAlgorithmOnVehicle("RF", series, kTv, options)
          .ValueOrDie();
  ThreadPool::SetDefaultThreadCount(4);
  const auto parallel =
      core::EvaluateAlgorithmOnVehicle("RF", series, kTv, options)
          .ValueOrDie();
  ThreadPool::SetDefaultThreadCount(0);  // restore hardware default

  EXPECT_EQ(serial.emre, parallel.emre);
  EXPECT_EQ(serial.eglobal, parallel.eglobal);
}

}  // namespace
}  // namespace nextmaint
