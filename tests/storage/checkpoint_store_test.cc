// Segmented checkpoint store tests: round-trips, byte determinism,
// single-segment rewrite isolation, corruption handling (every flavour of
// bad bytes must surface kDataLoss, never a crash), and the torn-rewrite
// invariant — a failed SaveVehicle/Commit must leave the committed
// superblock and every other vehicle's segment untouched and readable.

#include "storage/checkpoint_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/failpoints.h"
#include "common/rng.h"
#include "storage/checkpoint_format.h"

namespace nextmaint {
namespace storage {
namespace {

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Parameterized test names contain '/': flatten them so the path stays
    // a single file under TempDir.
    std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    path_ = ::testing::TempDir() + "checkpoint_store_test_" + name + ".ckpt";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    failpoints::DisarmAll();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  std::string path_;
};

std::vector<VehicleRecord> ThreeRecords() {
  return {
      {"truck-a", "BL", "payload of truck-a\nwith two lines\n"},
      {"truck-b", "LR", std::string(1000, 'b')},
      {"truck-c", "RF", "c"},
  };
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(CheckpointStoreTest, SaveAllLoadRoundTrip) {
  auto store = CheckpointStore::Open(path_).ValueOrDie();
  EXPECT_EQ(store->SaveAll(ThreeRecords()).ValueOrDie(), 1u);

  const CheckpointManifest manifest = store->Load().ValueOrDie();
  EXPECT_EQ(manifest.generation, 1u);
  ASSERT_EQ(manifest.vehicles.size(), 3u);
  const std::vector<VehicleRecord> expected = ThreeRecords();
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(manifest.vehicles[i].vehicle_id, expected[i].vehicle_id);
    EXPECT_EQ(manifest.vehicles[i].model_name, expected[i].model_name);
    EXPECT_EQ(manifest.vehicles[i].segment.Payload().ValueOrDie(),
              expected[i].payload);
  }
}

TEST_F(CheckpointStoreTest, SaveAllSortsAndRejectsDuplicates) {
  auto store = CheckpointStore::Open(path_).ValueOrDie();
  std::vector<VehicleRecord> shuffled = {{"z", "BL", "zz"},
                                         {"a", "BL", "aa"},
                                         {"m", "BL", "mm"}};
  ASSERT_TRUE(store->SaveAll(shuffled).ok());
  const CheckpointManifest manifest = store->Load().ValueOrDie();
  ASSERT_EQ(manifest.vehicles.size(), 3u);
  EXPECT_EQ(manifest.vehicles[0].vehicle_id, "a");
  EXPECT_EQ(manifest.vehicles[2].vehicle_id, "z");

  std::vector<VehicleRecord> duplicated = {{"a", "BL", "1"}, {"a", "LR", "2"}};
  EXPECT_FALSE(store->SaveAll(duplicated).ok());
}

TEST_F(CheckpointStoreTest, SaveAllIsByteDeterministic) {
  {
    auto store = CheckpointStore::Open(path_).ValueOrDie();
    ASSERT_TRUE(store->SaveAll(ThreeRecords()).ok());
  }
  const std::string first = ReadFileBytes(path_);
  {
    auto store = CheckpointStore::Open(path_).ValueOrDie();
    ASSERT_TRUE(store->SaveAll(ThreeRecords()).ok());
  }
  EXPECT_EQ(ReadFileBytes(path_), first);
}

TEST_F(CheckpointStoreTest, SaveVehicleRewritesOnlyItsSegmentAndIndex) {
  auto store = CheckpointStore::Open(path_).ValueOrDie();
  ASSERT_TRUE(store->SaveAll(ThreeRecords()).ok());
  const std::string before = ReadFileBytes(path_);

  ASSERT_TRUE(
      store->SaveVehicle({"truck-b", "LR", "fresh payload for b"}).ok());
  EXPECT_EQ(store->Commit().ValueOrDie(), 2u);
  const std::string after = ReadFileBytes(path_);

  // Single-segment update is append + alternate-slot flip: the data region
  // up to the old file_used — every committed segment and the old index —
  // is bit-for-bit unchanged, and so is the old generation's slot A.
  ASSERT_GT(after.size(), before.size());
  EXPECT_EQ(after.substr(kDataRegionOffset,
                         before.size() - kDataRegionOffset),
            before.substr(kDataRegionOffset));
  EXPECT_EQ(after.substr(0, kSuperblockSlotBytes),
            before.substr(0, kSuperblockSlotBytes));
  // Only slot B (generation 2 lives at slot index (2-1)%2 = 1) changed.
  EXPECT_NE(after.substr(kSuperblockSlotBytes, kSuperblockSlotBytes),
            before.substr(kSuperblockSlotBytes, kSuperblockSlotBytes));

  const CheckpointManifest manifest = store->Load().ValueOrDie();
  EXPECT_EQ(manifest.generation, 2u);
  ASSERT_EQ(manifest.vehicles.size(), 3u);
  EXPECT_EQ(manifest.vehicles[1].segment.Payload().ValueOrDie(),
            "fresh payload for b");
  EXPECT_EQ(manifest.vehicles[0].segment.Payload().ValueOrDie(),
            ThreeRecords()[0].payload);
}

TEST_F(CheckpointStoreTest, SaveVehicleIsInvisibleUntilCommit) {
  auto store = CheckpointStore::Open(path_).ValueOrDie();
  ASSERT_TRUE(store->SaveAll(ThreeRecords()).ok());
  ASSERT_TRUE(store->SaveVehicle({"truck-a", "BL", "uncommitted"}).ok());

  auto reader = CheckpointStore::Open(path_).ValueOrDie();
  const CheckpointManifest manifest = reader->Load().ValueOrDie();
  EXPECT_EQ(manifest.generation, 1u);
  EXPECT_EQ(manifest.vehicles[0].segment.Payload().ValueOrDie(),
            ThreeRecords()[0].payload);
}

TEST_F(CheckpointStoreTest, SaveVehicleOnMissingOrLegacyFileFails) {
  auto store = CheckpointStore::Open(path_).ValueOrDie();
  EXPECT_EQ(store->SaveVehicle({"v", "BL", "p"}).code(),
            StatusCode::kFailedPrecondition);

  WriteFileBytes(path_, "vehicle v1 BL\nsome model text\nfleet-end\n");
  auto legacy = CheckpointStore::Open(path_).ValueOrDie();
  EXPECT_EQ(legacy->SaveVehicle({"v", "BL", "p"}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(legacy->Load().status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointStoreTest, CommitWithNothingStagedIsANoOp) {
  auto store = CheckpointStore::Open(path_).ValueOrDie();
  ASSERT_TRUE(store->SaveAll(ThreeRecords()).ok());
  const std::string before = ReadFileBytes(path_);
  EXPECT_EQ(store->Commit().ValueOrDie(), 1u);
  EXPECT_EQ(ReadFileBytes(path_), before);
}

// --------------------------------------------------------------------------
// Corruption: every flavour must be kDataLoss, never a crash or garbage.
// --------------------------------------------------------------------------

TEST_F(CheckpointStoreTest, GarbageSuperblockIsDataLoss) {
  WriteFileBytes(path_, std::string(4096, '\x5a'));
  auto store = CheckpointStore::Open(path_).ValueOrDie();
  EXPECT_EQ(store->Load().status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(store->SaveVehicle({"v", "BL", "p"}).code(),
            StatusCode::kDataLoss);
}

TEST_F(CheckpointStoreTest, TruncatedSegmentIsDataLossAtPayloadTime) {
  {
    auto store = CheckpointStore::Open(path_).ValueOrDie();
    ASSERT_TRUE(store->SaveAll(ThreeRecords()).ok());
  }
  // Chop inside the first segment: the index (at the tail) is gone too, so
  // the load itself reports data loss.
  const std::string bytes = ReadFileBytes(path_);
  WriteFileBytes(path_, bytes.substr(0, kDataRegionOffset + 8));
  auto store = CheckpointStore::Open(path_).ValueOrDie();
  EXPECT_EQ(store->Load().status().code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointStoreTest, BitFlippedSegmentLoadsButPayloadIsDataLoss) {
  {
    auto store = CheckpointStore::Open(path_).ValueOrDie();
    ASSERT_TRUE(store->SaveAll(ThreeRecords()).ok());
  }
  // Flip one payload byte of truck-a (first segment, right after the
  // superblocks). The index and superblock stay valid, so Load succeeds —
  // lazily — and only materializing the damaged segment fails.
  std::string bytes = ReadFileBytes(path_);
  bytes[kDataRegionOffset + 3] ^= 0x40;
  WriteFileBytes(path_, bytes);

  auto store = CheckpointStore::Open(path_).ValueOrDie();
  const CheckpointManifest manifest = store->Load().ValueOrDie();
  ASSERT_EQ(manifest.vehicles.size(), 3u);
  EXPECT_EQ(manifest.vehicles[0].segment.Payload().status().code(),
            StatusCode::kDataLoss);
  // The sibling segments are untouched and still materialize.
  EXPECT_EQ(manifest.vehicles[1].segment.Payload().ValueOrDie(),
            ThreeRecords()[1].payload);
}

TEST_F(CheckpointStoreTest, SniffRoutesEveryFormat) {
  EXPECT_EQ(SniffCheckpointFormat(path_).ValueOrDie(),
            CheckpointFormat::kMissing);

  WriteFileBytes(path_, "vehicle v1 BL\n...\nfleet-end\n");
  EXPECT_EQ(SniffCheckpointFormat(path_).ValueOrDie(),
            CheckpointFormat::kLegacyText);

  WriteFileBytes(path_, "total nonsense");
  EXPECT_EQ(SniffCheckpointFormat(path_).ValueOrDie(),
            CheckpointFormat::kUnrecognized);

  auto store = CheckpointStore::Open(path_).ValueOrDie();
  ASSERT_TRUE(store->SaveAll(ThreeRecords()).ok());
  EXPECT_EQ(SniffCheckpointFormat(path_).ValueOrDie(),
            CheckpointFormat::kSegmented);
}

// --------------------------------------------------------------------------
// Torn-rewrite invariant (ISSUE 10): a SaveVehicle/Commit that dies at any
// storage failpoint must leave the previous generation fully readable —
// superblock, index and every other vehicle's bytes intact.
// --------------------------------------------------------------------------

class TornRewriteTest : public CheckpointStoreTest,
                        public ::testing::WithParamInterface<const char*> {};

TEST_P(TornRewriteTest, FailedSingleVehicleRewriteLeavesOldGenerationIntact) {
  if (!failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  {
    auto seeder = CheckpointStore::Open(path_).ValueOrDie();
    ASSERT_TRUE(seeder->SaveAll(ThreeRecords()).ok());
  }
  const std::string before = ReadFileBytes(path_);

  // A cold store, so the rewrite exercises every seam: open fires in the
  // committed-state refresh, segment_write in the append, commit in the
  // pre-fsync window.
  auto store = CheckpointStore::Open(path_).ValueOrDie();
  ASSERT_TRUE(failpoints::Arm(GetParam()).ok());
  Status failed = store->SaveVehicle({"truck-b", "LR", "torn rewrite"});
  if (failed.ok()) failed = store->Commit().status();
  failpoints::DisarmAll();
  EXPECT_FALSE(failed.ok()) << GetParam();

  // Both superblock slots are bit-identical to the committed generation,
  // and a fresh reader still sees generation 1 with the original payloads
  // (orphaned appended bytes past file_used are harmless by design).
  const std::string after = ReadFileBytes(path_);
  ASSERT_GE(after.size(), before.size());
  EXPECT_EQ(after.substr(0, kDataRegionOffset),
            before.substr(0, kDataRegionOffset));

  auto reader = CheckpointStore::Open(path_).ValueOrDie();
  const CheckpointManifest manifest = reader->Load().ValueOrDie();
  EXPECT_EQ(manifest.generation, 1u);
  ASSERT_EQ(manifest.vehicles.size(), 3u);
  const std::vector<VehicleRecord> expected = ThreeRecords();
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(manifest.vehicles[i].segment.Payload().ValueOrDie(),
              expected[i].payload);
  }
}

INSTANTIATE_TEST_SUITE_P(StorageSites, TornRewriteTest,
                         ::testing::Values("storage.checkpoint.segment_write",
                                           "storage.checkpoint.commit",
                                           "storage.checkpoint.open"));

// --------------------------------------------------------------------------
// Decoder fuzzing: random mutations of valid encodings must either decode
// or fail with a clean Status — DecodeSuperblockSlot/DecodeSegmentIndex are
// pure span->struct functions, so this hammers them without a filesystem.
// --------------------------------------------------------------------------

std::span<const uint8_t> AsBytes(const std::string& s) {
  return std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

TEST(CheckpointFuzzTest, MutatedSuperblocksNeverCrash) {
  SuperblockSlot slot;
  slot.vehicle_count = 3;
  slot.generation = 7;
  slot.index_offset = 500;
  slot.index_size = 120;
  slot.index_crc32 = 0xdeadbeef;
  slot.file_used = 620;
  const std::string valid = EncodeSuperblockSlot(slot);
  ASSERT_TRUE(DecodeSuperblockSlot(AsBytes(valid)).ok());

  Rng rng(20260809);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = valid;
    const int flips = 1 + static_cast<int>(rng.UniformInt(uint64_t{4}));
    for (int f = 0; f < flips; ++f) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(uint64_t{mutated.size()}));
      mutated[pos] = static_cast<char>(rng.UniformInt(uint64_t{256}));
    }
    const auto decoded = DecodeSuperblockSlot(AsBytes(mutated));
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
    }
  }
  // Wrong sizes are rejected outright.
  EXPECT_EQ(DecodeSuperblockSlot(AsBytes(valid.substr(1))).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(DecodeSuperblockSlot(AsBytes(std::string())).status().code(),
            StatusCode::kDataLoss);
}

TEST(CheckpointFuzzTest, MutatedIndexesNeverCrashAndNeverOverAllocate) {
  std::vector<SegmentIndexEntry> entries;
  for (int i = 0; i < 4; ++i) {
    SegmentIndexEntry entry;
    entry.vehicle_id = "vehicle-" + std::to_string(i);
    entry.model_name = "BL";
    entry.segment_offset = kDataRegionOffset + static_cast<uint64_t>(i) * 100;
    entry.payload_size = 100;
    entry.payload_crc32 = 0x12345678u + static_cast<uint32_t>(i);
    entries.push_back(std::move(entry));
  }
  const uint64_t file_limit = kDataRegionOffset + 400;
  const std::string valid = EncodeSegmentIndex(entries);
  ASSERT_TRUE(DecodeSegmentIndex(AsBytes(valid), 4, file_limit).ok());

  Rng rng(20260810);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = valid;
    const int flips = 1 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    for (int f = 0; f < flips; ++f) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(uint64_t{mutated.size()}));
      mutated[pos] = static_cast<char>(rng.UniformInt(uint64_t{256}));
    }
    // Also fuzz the declared count and limit occasionally.
    const uint32_t count =
        i % 5 == 0 ? static_cast<uint32_t>(rng.UniformInt(uint64_t{10})) : 4;
    const auto decoded = DecodeSegmentIndex(AsBytes(mutated), count,
                                            file_limit);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
    }
  }
  // Truncations at every byte boundary stay clean.
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    const auto decoded =
        DecodeSegmentIndex(AsBytes(valid.substr(0, cut)), 4, file_limit);
    EXPECT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
  // A count promising more entries than the bytes hold must not allocate.
  EXPECT_EQ(DecodeSegmentIndex(AsBytes(valid), 1'000'000, file_limit)
                .status()
                .code(),
            StatusCode::kDataLoss);
}

}  // namespace
}  // namespace storage
}  // namespace nextmaint
