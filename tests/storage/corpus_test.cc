// Compacted corpus tests: writer/reader round-trips, the header-resident
// similarity key's pinning to core::FirstHalfCycleUsage, and corruption
// handling (kDataLoss, never a crash).

#include "storage/corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/cold_start.h"

namespace nextmaint {
namespace storage {
namespace {

constexpr double kTv = 300'000.0;

Date Day(int offset) {
  return Date::FromYmd(2016, 1, 1).ValueOrDie().AddDays(offset);
}

data::DailySeries MakeSeries(uint64_t seed, int days) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(days));
  for (int d = 0; d < days; ++d) {
    values.push_back(rng.Uniform(5'000.0, 20'000.0));
  }
  return data::DailySeries(Day(0), std::move(values));
}

class CorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "corpus_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".nmc";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  /// Writes a corpus of `count` vehicles ("fleet-000".."fleet-N") with
  /// `days` days each and returns the input series by id.
  std::map<std::string, data::DailySeries> WriteCorpus(int count, int days) {
    std::map<std::string, data::DailySeries> fleet;
    auto writer = CorpusWriter::Create(path_, kTv).ValueOrDie();
    for (int v = 0; v < count; ++v) {
      char id[16];
      std::snprintf(id, sizeof(id), "fleet-%03d", v);
      data::DailySeries series =
          MakeSeries(static_cast<uint64_t>(v) + 1, days);
      EXPECT_TRUE(writer->AddVehicle(id, series).ok());
      fleet.emplace(id, std::move(series));
    }
    EXPECT_GT(writer->Finish().ValueOrDie(), kCorpusSuperblockBytes);
    return fleet;
  }

  std::string path_;
};

TEST_F(CorpusTest, RoundTripsEverySeriesExactly) {
  const auto fleet = WriteCorpus(5, 60);
  auto reader = CorpusReader::Open(path_).ValueOrDie();
  EXPECT_EQ(reader->maintenance_interval_s(), kTv);
  ASSERT_EQ(reader->summaries().size(), 5u);
  for (const auto& [id, series] : fleet) {
    const data::DailySeries loaded = reader->Series(id).ValueOrDie();
    EXPECT_EQ(loaded.start_date().day_number(),
              series.start_date().day_number());
    // Bit-exact round-trip: f64 columns are stored verbatim.
    ASSERT_EQ(loaded.size(), series.size());
    EXPECT_EQ(loaded.values(), series.values());
  }
  EXPECT_EQ(reader->Series("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(reader->Summary("ghost").status().code(), StatusCode::kNotFound);
}

TEST_F(CorpusTest, SummariesCarryTheExactFirstHalfCycleKey) {
  const auto fleet = WriteCorpus(4, 60);
  auto reader = CorpusReader::Open(path_).ValueOrDie();
  for (const auto& [id, series] : fleet) {
    const CorpusVehicleSummary* summary =
        reader->Summary(id).ValueOrDie();
    // The header key is pinned to core::FirstHalfCycleUsage: cold-start
    // screening from headers must agree bit-for-bit with the CSV path.
    const auto expected = core::FirstHalfCycleUsage(series, kTv);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(summary->first_half_usage, expected.ValueOrDie()) << id;
    EXPECT_EQ(summary->num_days, series.size());
    EXPECT_DOUBLE_EQ(summary->mean_usage,
                     summary->total_usage / summary->num_days);
  }
}

TEST_F(CorpusTest, NewVehicleGetsAnEmptyKeyAndSimilaritySkipsIt) {
  auto writer = CorpusWriter::Create(path_, kTv).ValueOrDie();
  // 3 days of light usage: far below T_v/2, category "new".
  ASSERT_TRUE(
      writer
          ->AddVehicle("baby", data::DailySeries(Day(0), {10.0, 10.0, 10.0}))
          .ok());
  data::DailySeries old_series = MakeSeries(7, 60);
  ASSERT_TRUE(writer->AddVehicle("old", old_series).ok());
  ASSERT_TRUE(writer->Finish().ok());

  auto reader = CorpusReader::Open(path_).ValueOrDie();
  EXPECT_TRUE(reader->Summary("baby").ValueOrDie()->first_half_usage.empty());
  EXPECT_FALSE(reader->Summary("old").ValueOrDie()->first_half_usage.empty());

  // Header-driven similarity skips the keyless vehicle and finds the old
  // one — without materializing any block.
  const auto match = core::MostSimilarFromCorpus(
      core::FirstHalfCycleUsage(old_series, kTv).ValueOrDie(),
      reader->summaries(), core::ColdStartOptions{});
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match.ValueOrDie().id, "old");
}

TEST_F(CorpusTest, SimilarityFailsCleanlyWhenNoVehicleHasAKey) {
  auto writer = CorpusWriter::Create(path_, kTv).ValueOrDie();
  ASSERT_TRUE(
      writer->AddVehicle("baby", data::DailySeries(Day(0), {10.0})).ok());
  ASSERT_TRUE(writer->Finish().ok());
  auto reader = CorpusReader::Open(path_).ValueOrDie();
  EXPECT_EQ(core::MostSimilarFromCorpus({10.0}, reader->summaries(),
                                        core::ColdStartOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CorpusTest, VehiclesMustArriveInAscendingIdOrder) {
  auto writer = CorpusWriter::Create(path_, kTv).ValueOrDie();
  ASSERT_TRUE(writer->AddVehicle("b", MakeSeries(1, 40)).ok());
  EXPECT_FALSE(writer->AddVehicle("a", MakeSeries(2, 40)).ok());
  EXPECT_FALSE(writer->AddVehicle("b", MakeSeries(3, 40)).ok());
}

TEST_F(CorpusTest, IsCorpusFileRoutes) {
  WriteCorpus(1, 40);
  EXPECT_TRUE(IsCorpusFile(path_).ValueOrDie());
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << "date,utilization_s\n2016-01-01,100\n";
  }
  EXPECT_FALSE(IsCorpusFile(path_).ValueOrDie());
  EXPECT_FALSE(IsCorpusFile(path_ + ".does-not-exist").ok());
}

TEST_F(CorpusTest, TruncationAndBitFlipsAreDataLoss) {
  WriteCorpus(3, 50);
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }

  // Truncating into the summary index kills Open.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ(CorpusReader::Open(path_).status().code(), StatusCode::kDataLoss);

  // A bit flip inside one column block leaves Open (headers) fine but
  // fails that vehicle's materialization — and only that vehicle's.
  std::string flipped = bytes;
  flipped[kCorpusSuperblockBytes + 1] ^= 0x20;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  auto reader = CorpusReader::Open(path_).ValueOrDie();
  ASSERT_EQ(reader->summaries().size(), 3u);
  EXPECT_EQ(reader->Series("fleet-000").status().code(),
            StatusCode::kDataLoss);
  EXPECT_TRUE(reader->Series("fleet-001").ok());

  // Garbage superblock: not a corpus at all.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << std::string(4096, 'q');
  }
  EXPECT_FALSE(IsCorpusFile(path_).ValueOrDie());
  EXPECT_EQ(CorpusReader::Open(path_).status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace storage
}  // namespace nextmaint
