// Legacy-to-segmented checkpoint migration compat suite (ISSUE 10):
// a fleet saved in the legacy monolithic text format and re-saved through
// the segmented store must forecast bit-identically, lazy loads must
// materialize on first touch only, and re-saving a lazily loaded fleet
// must reproduce the checkpoint byte-for-byte without parsing a model.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "core/scheduler.h"
#include "storage/checkpoint_store.h"
#include "telematics/fleet.h"

namespace nextmaint {
namespace core {
namespace {

constexpr double kTv = 500'000.0;

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

SchedulerOptions FastOptions() {
  SchedulerOptions options;
  options.maintenance_interval_s = kTv;
  options.window = 3;
  options.algorithms = {"BL", "LR"};
  options.unified_algorithm = "LR";
  options.selection.tune = false;
  options.selection.resampling_shifts = 0;
  return options;
}

data::DailySeries SimulatedVehicle(uint64_t seed, int days) {
  Rng rng(seed);
  telem::VehicleProfile profile = telem::DefaultFleetProfiles(1, &rng)[0];
  profile.maintenance_interval_s = kTv;
  Rng sim_rng(seed * 7 + 3);
  return telem::SimulateVehicle(profile, Day(0), days, 0.0, &sim_rng)
      .ValueOrDie()
      .utilization;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class MigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string stem =
        ::testing::TempDir() + "migration_test_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    legacy_path_ = stem + ".legacy.ckpt";
    segmented_path_ = stem + ".ckpt";
    std::remove(legacy_path_.c_str());
    std::remove(segmented_path_.c_str());
  }
  void TearDown() override {
    std::remove(legacy_path_.c_str());
    std::remove(segmented_path_.c_str());
  }

  /// A trained 3-vehicle fleet with both checkpoint formats on disk.
  FleetScheduler TrainedFleet() {
    FleetScheduler scheduler(FastOptions());
    for (int v = 0; v < 3; ++v) {
      const std::string id = "v" + std::to_string(v);
      EXPECT_TRUE(scheduler.RegisterVehicle(id, Day(0)).ok());
      EXPECT_TRUE(
          scheduler
              .IngestSeries(id, SimulatedVehicle(static_cast<uint64_t>(v) + 1,
                                                 600))
              .ok());
    }
    EXPECT_TRUE(scheduler.TrainAll().ok());
    EXPECT_TRUE(scheduler.SaveLegacyCheckpoint(legacy_path_).ok());
    EXPECT_TRUE(scheduler.SaveCheckpoint(segmented_path_).ok());
    return scheduler;
  }

  /// A fresh scheduler with the same registered vehicles and data but no
  /// trained models, ready to LoadCheckpoint.
  FleetScheduler FreshFleet() {
    FleetScheduler scheduler(FastOptions());
    for (int v = 0; v < 3; ++v) {
      const std::string id = "v" + std::to_string(v);
      EXPECT_TRUE(scheduler.RegisterVehicle(id, Day(0)).ok());
      EXPECT_TRUE(
          scheduler
              .IngestSeries(id, SimulatedVehicle(static_cast<uint64_t>(v) + 1,
                                                 600))
              .ok());
    }
    return scheduler;
  }

  std::string legacy_path_;
  std::string segmented_path_;
};

TEST_F(MigrationTest, LegacyAndSegmentedLoadsForecastBitIdentically) {
  TrainedFleet();

  FleetScheduler from_legacy = FreshFleet();
  ASSERT_TRUE(from_legacy.LoadCheckpoint(legacy_path_).ok());
  FleetScheduler from_segmented = FreshFleet();
  ASSERT_TRUE(from_segmented.LoadCheckpoint(segmented_path_).ok());

  for (int v = 0; v < 3; ++v) {
    const std::string id = "v" + std::to_string(v);
    const MaintenanceForecast a = from_legacy.Forecast(id).ValueOrDie();
    const MaintenanceForecast b = from_segmented.Forecast(id).ValueOrDie();
    EXPECT_EQ(a.model_name, b.model_name) << id;
    // Bit-identical, not approximately equal: the migration contract.
    EXPECT_EQ(a.days_left, b.days_left) << id;
    EXPECT_EQ(a.usage_seconds_left, b.usage_seconds_left) << id;
    EXPECT_EQ(a.predicted_date.day_number(), b.predicted_date.day_number())
        << id;
  }
}

TEST_F(MigrationTest, MigrationRoundTripKeepsSegmentedBytesIdentical) {
  TrainedFleet();
  const std::string original = ReadFileBytes(segmented_path_);

  // legacy -> (load, parse) -> segmented re-save must equal the segmented
  // file the original scheduler wrote: serialization is deterministic and
  // the store is byte-deterministic.
  FleetScheduler migrator = FreshFleet();
  ASSERT_TRUE(migrator.LoadCheckpoint(legacy_path_).ok());
  ASSERT_TRUE(migrator.SaveCheckpoint(segmented_path_).ok());
  EXPECT_EQ(ReadFileBytes(segmented_path_), original);
}

TEST_F(MigrationTest, LazyLoadMaterializesOnFirstTouchOnly) {
  TrainedFleet();
  telemetry::SetEnabled(true);
  FleetScheduler lazy = FreshFleet();
  const telemetry::MetricsSnapshot before = telemetry::Snapshot();
  ASSERT_TRUE(lazy.LoadCheckpoint(segmented_path_).ok());

  auto materializations = [&before]() -> uint64_t {
    const telemetry::MetricsSnapshot now = telemetry::Snapshot();
    const auto it =
        now.counters.find("scheduler.checkpoint.lazy_materializations");
    const uint64_t total = it == now.counters.end() ? 0 : it->second;
    const auto base =
        before.counters.find("scheduler.checkpoint.lazy_materializations");
    return total - (base == before.counters.end() ? 0 : base->second);
  };

  // The load itself parses nothing.
  EXPECT_EQ(materializations(), 0);
  EXPECT_TRUE(lazy.HasTrainedModel("v0").ValueOrDie());

  // First forecast touches exactly one vehicle's segment.
  ASSERT_TRUE(lazy.Forecast("v0").ok());
  EXPECT_EQ(materializations(), 1);
  // Repeat forecasts reuse the materialized model.
  ASSERT_TRUE(lazy.Forecast("v0").ok());
  EXPECT_EQ(materializations(), 1);
  ASSERT_TRUE(lazy.Forecast("v1").ok());
  EXPECT_EQ(materializations(), 2);
  telemetry::SetEnabled(false);
}

TEST_F(MigrationTest, ResavingALazyFleetCopiesSegmentsVerbatim) {
  TrainedFleet();
  const std::string original = ReadFileBytes(segmented_path_);

  telemetry::SetEnabled(true);
  FleetScheduler lazy = FreshFleet();
  ASSERT_TRUE(lazy.LoadCheckpoint(segmented_path_).ok());
  // Touch one vehicle so the re-save mixes materialized and pending
  // segments; both paths must reproduce the original bytes.
  ASSERT_TRUE(lazy.Forecast("v1").ok());

  const telemetry::MetricsSnapshot before = telemetry::Snapshot();
  ASSERT_TRUE(lazy.SaveCheckpoint(segmented_path_).ok());
  EXPECT_EQ(ReadFileBytes(segmented_path_), original);

  // The save did not materialize the untouched vehicles.
  const telemetry::MetricsSnapshot after = telemetry::Snapshot();
  const auto count = [](const telemetry::MetricsSnapshot& snapshot) {
    const auto it =
        snapshot.counters.find("scheduler.checkpoint.lazy_materializations");
    return it == snapshot.counters.end() ? uint64_t{0} : it->second;
  };
  EXPECT_EQ(count(after), count(before));
  telemetry::SetEnabled(false);
}

TEST_F(MigrationTest, CorruptSegmentSurfacesAtForecastNotLoad) {
  TrainedFleet();
  // Flip a byte in the first vehicle's segment payload.
  std::string bytes = ReadFileBytes(segmented_path_);
  bytes[storage::kDataRegionOffset + 5] ^= 0x10;
  {
    std::ofstream out(segmented_path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  FleetScheduler lazy = FreshFleet();
  // The index is intact, so the lazy load succeeds...
  ASSERT_TRUE(lazy.LoadCheckpoint(segmented_path_).ok());
  // ...and the corruption surfaces as kDataLoss when the damaged vehicle
  // is first touched, while its siblings keep forecasting.
  EXPECT_EQ(lazy.Forecast("v0").status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(lazy.Forecast("v1").ok());
}

}  // namespace
}  // namespace core
}  // namespace nextmaint
