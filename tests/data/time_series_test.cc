#include "data/time_series.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace nextmaint {
namespace data {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

TEST(DailySeriesTest, EmptySeries) {
  DailySeries series;
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.size(), 0u);
  EXPECT_TRUE(series.IsComplete());
  EXPECT_DOUBLE_EQ(series.Sum(), 0.0);
}

TEST(DailySeriesTest, BasicAccessors) {
  DailySeries series(Day(0), {1.0, 2.0, 3.0});
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.start_date(), Day(0));
  EXPECT_EQ(series.end_date(), Day(2));
  EXPECT_DOUBLE_EQ(series[1], 2.0);
  series[1] = 5.0;
  EXPECT_DOUBLE_EQ(series[1], 5.0);
}

TEST(DailySeriesTest, AppendExtendsEndDate) {
  DailySeries series(Day(0), {1.0});
  series.Append(2.0);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.end_date(), Day(1));
}

TEST(DailySeriesTest, NextDateIsDayAfterEnd) {
  DailySeries series(Day(0), {1.0, 2.0});
  EXPECT_EQ(series.next_date(), Day(2));
  series.Append(3.0);
  EXPECT_EQ(series.next_date(), Day(3));
  // An empty series has no end yet: the next append covers the start date.
  DailySeries fresh(Day(5), {});
  EXPECT_EQ(fresh.next_date(), Day(5));
}

TEST(DailySeriesTest, AtReturnsValueInsideRange) {
  DailySeries series(Day(0), {10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(series.At(Day(1)).ValueOrDie(), 20.0);
  EXPECT_DOUBLE_EQ(series.At(Day(0)).ValueOrDie(), 10.0);
  EXPECT_DOUBLE_EQ(series.At(Day(2)).ValueOrDie(), 30.0);
}

TEST(DailySeriesTest, AtFailsOutsideRange) {
  DailySeries series(Day(0), {10.0, 20.0});
  EXPECT_FALSE(series.At(Day(-1)).ok());
  EXPECT_FALSE(series.At(Day(2)).ok());
}

TEST(DailySeriesTest, IndexOf) {
  DailySeries series(Day(5), {1.0, 2.0});
  EXPECT_EQ(series.IndexOf(Day(5)).ValueOrDie(), 0u);
  EXPECT_EQ(series.IndexOf(Day(6)).ValueOrDie(), 1u);
  EXPECT_FALSE(series.IndexOf(Day(4)).ok());
}

TEST(DailySeriesTest, SliceShiftsStartDate) {
  DailySeries series(Day(0), {0.0, 1.0, 2.0, 3.0, 4.0});
  const DailySeries slice = series.Slice(2, 2);
  EXPECT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice.start_date(), Day(2));
  EXPECT_DOUBLE_EQ(slice[0], 2.0);
  EXPECT_DOUBLE_EQ(slice[1], 3.0);
}

TEST(DailySeriesTest, SliceClampsToRange) {
  DailySeries series(Day(0), {0.0, 1.0, 2.0});
  EXPECT_EQ(series.Slice(1, 100).size(), 2u);
  EXPECT_TRUE(series.Slice(5, 2).empty());
  EXPECT_EQ(series.Slice(0, 0).size(), 0u);
}

TEST(DailySeriesTest, MissingValueAccounting) {
  DailySeries series(Day(0), {1.0, kNaN, 3.0, kNaN});
  EXPECT_FALSE(series.IsComplete());
  EXPECT_EQ(series.MissingCount(), 2u);
  EXPECT_DOUBLE_EQ(series.Sum(), 4.0);        // NaNs skipped
  EXPECT_DOUBLE_EQ(series.MeanValue(), 2.0);  // over observed values only
}

TEST(DailySeriesTest, MeanOfAllNaNIsZero) {
  DailySeries series(Day(0), {kNaN, kNaN});
  EXPECT_DOUBLE_EQ(series.MeanValue(), 0.0);
}

TEST(DailySeriesTest, CumulativeSumTreatsNaNAsZero) {
  DailySeries series(Day(0), {1.0, kNaN, 2.0});
  const std::vector<double> cumulative = series.CumulativeSum();
  ASSERT_EQ(cumulative.size(), 3u);
  EXPECT_DOUBLE_EQ(cumulative[0], 1.0);
  EXPECT_DOUBLE_EQ(cumulative[1], 1.0);
  EXPECT_DOUBLE_EQ(cumulative[2], 3.0);
}

TEST(DailySeriesTest, CumulativeSumMonotoneForNonNegative) {
  DailySeries series(Day(0), {5.0, 0.0, 2.5, 0.0});
  const std::vector<double> cumulative = series.CumulativeSum();
  for (size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]);
  }
  EXPECT_DOUBLE_EQ(cumulative.back(), series.Sum());
}

}  // namespace
}  // namespace data
}  // namespace nextmaint
