#include "data/table.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nextmaint {
namespace data {
namespace {

Table MakeSampleTable() {
  Column id("id", ColumnType::kInt64);
  id.AppendInt64(1);
  id.AppendInt64(2);
  id.AppendInt64(3);
  Column usage("usage", ColumnType::kDouble);
  usage.AppendDouble(100.5);
  usage.AppendNull();
  usage.AppendDouble(300.0);
  Column name("name", ColumnType::kString);
  name.AppendString("a");
  name.AppendString("b");
  name.AppendString("c");
  Table table;
  EXPECT_TRUE(table.AddColumn(std::move(id)).ok());
  EXPECT_TRUE(table.AddColumn(std::move(usage)).ok());
  EXPECT_TRUE(table.AddColumn(std::move(name)).ok());
  return table;
}

TEST(ColumnTest, TypedAppendAndRead) {
  Column column("x", ColumnType::kDouble);
  column.AppendDouble(1.5);
  column.AppendNull();
  EXPECT_EQ(column.size(), 2u);
  EXPECT_DOUBLE_EQ(column.DoubleAt(0), 1.5);
  EXPECT_TRUE(std::isnan(column.DoubleAt(1)));
  EXPECT_TRUE(column.IsValid(0));
  EXPECT_FALSE(column.IsValid(1));
  EXPECT_EQ(column.null_count(), 1u);
}

TEST(ColumnTest, TypeMismatchAborts) {
  Column column("x", ColumnType::kDouble);
  EXPECT_DEATH(column.AppendInt64(1), "x");
}

TEST(ColumnTest, AsDoublesWidensInt64) {
  Column column("n", ColumnType::kInt64);
  column.AppendInt64(4);
  column.AppendNull();
  const std::vector<double> values = column.AsDoubles().ValueOrDie();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 4.0);
  EXPECT_TRUE(std::isnan(values[1]));
}

TEST(ColumnTest, AsDoublesFailsForStrings) {
  Column column("s", ColumnType::kString);
  column.AppendString("x");
  EXPECT_FALSE(column.AsDoubles().ok());
}

TEST(TableTest, CreateFromSchema) {
  const Table table = Table::Create({{"a", ColumnType::kDouble},
                                     {"b", ColumnType::kInt64}})
                          .ValueOrDie();
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TableTest, CreateRejectsDuplicateNames) {
  EXPECT_FALSE(Table::Create({{"a", ColumnType::kDouble},
                              {"a", ColumnType::kInt64}})
                   .ok());
}

TEST(TableTest, AddColumnValidatesRowCount) {
  Table table = MakeSampleTable();
  Column short_column("bad", ColumnType::kDouble);
  short_column.AppendDouble(1.0);
  EXPECT_FALSE(table.AddColumn(std::move(short_column)).ok());
}

TEST(TableTest, AddColumnRejectsDuplicateName) {
  Table table = MakeSampleTable();
  Column dup("id", ColumnType::kDouble);
  dup.AppendDouble(1);
  dup.AppendDouble(2);
  dup.AppendDouble(3);
  EXPECT_EQ(table.AddColumn(std::move(dup)).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, GetColumnByName) {
  const Table table = MakeSampleTable();
  const Column* usage = table.GetColumn("usage").ValueOrDie();
  EXPECT_EQ(usage->name(), "usage");
  EXPECT_FALSE(table.GetColumn("absent").ok());
  EXPECT_EQ(table.ColumnIndex("name").ValueOrDie(), 2u);
}

TEST(TableTest, ColumnNames) {
  EXPECT_EQ(MakeSampleTable().ColumnNames(),
            (std::vector<std::string>{"id", "usage", "name"}));
}

TEST(TableTest, FilterKeepsMatchingRows) {
  const Table table = MakeSampleTable();
  const Table filtered = table.Filter([](size_t row) { return row != 1; });
  EXPECT_EQ(filtered.num_rows(), 2u);
  EXPECT_EQ(filtered.GetColumn("id").ValueOrDie()->Int64At(1), 3);
  EXPECT_EQ(filtered.GetColumn("name").ValueOrDie()->StringAt(0), "a");
}

TEST(TableTest, FilterPreservesNulls) {
  const Table table = MakeSampleTable();
  const Table filtered = table.Filter([](size_t row) { return row == 1; });
  EXPECT_EQ(filtered.num_rows(), 1u);
  EXPECT_FALSE(filtered.GetColumn("usage").ValueOrDie()->IsValid(0));
}

TEST(TableTest, SelectReordersColumns) {
  const Table table = MakeSampleTable();
  const Table selected = table.Select({"name", "id"}).ValueOrDie();
  EXPECT_EQ(selected.ColumnNames(),
            (std::vector<std::string>{"name", "id"}));
  EXPECT_EQ(selected.num_rows(), 3u);
  EXPECT_FALSE(table.Select({"ghost"}).ok());
}

TEST(TableTest, SliceClampsRange) {
  const Table table = MakeSampleTable();
  EXPECT_EQ(table.Slice(1, 1).num_rows(), 1u);
  EXPECT_EQ(table.Slice(1, 99).num_rows(), 2u);
  EXPECT_EQ(table.Slice(9, 2).num_rows(), 0u);
  EXPECT_EQ(table.Slice(1, 1).GetColumn("id").ValueOrDie()->Int64At(0), 2);
}

TEST(TableTest, ConcatAppendsRows) {
  Table a = MakeSampleTable();
  const Table b = MakeSampleTable();
  ASSERT_TRUE(a.Concat(b).ok());
  EXPECT_EQ(a.num_rows(), 6u);
  EXPECT_EQ(a.GetColumn("id").ValueOrDie()->Int64At(3), 1);
}

TEST(TableTest, ConcatRejectsSchemaMismatch) {
  Table a = MakeSampleTable();
  Table b = Table::Create({{"other", ColumnType::kDouble}}).ValueOrDie();
  EXPECT_FALSE(a.Concat(b).ok());
}

TEST(TableTest, NullCountAggregates) {
  EXPECT_EQ(MakeSampleTable().null_count(), 1u);
}

TEST(TableTest, EmptyTableBasics) {
  Table table;
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_EQ(table.num_columns(), 0u);
  EXPECT_EQ(table.null_count(), 0u);
}

}  // namespace
}  // namespace data
}  // namespace nextmaint
