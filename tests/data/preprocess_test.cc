#include "data/preprocess.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace nextmaint {
namespace data {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

TEST(CleanTest, ZeroPolicyFillsGaps) {
  DailySeries series(Day(0), {1.0, kNaN, 3.0});
  const CleaningReport report = Clean(&series, MissingValuePolicy::kZero);
  EXPECT_EQ(report.missing_filled, 1u);
  EXPECT_TRUE(series.IsComplete());
  EXPECT_DOUBLE_EQ(series[1], 0.0);
}

TEST(CleanTest, MeanPolicyUsesObservedMean) {
  DailySeries series(Day(0), {2.0, kNaN, 4.0});
  Clean(&series, MissingValuePolicy::kMean);
  EXPECT_DOUBLE_EQ(series[1], 3.0);
}

TEST(CleanTest, ForwardFillCarriesLastValue) {
  DailySeries series(Day(0), {kNaN, 5.0, kNaN, kNaN, 7.0});
  Clean(&series, MissingValuePolicy::kForwardFill);
  EXPECT_DOUBLE_EQ(series[0], 0.0);  // leading gap has nothing to carry
  EXPECT_DOUBLE_EQ(series[2], 5.0);
  EXPECT_DOUBLE_EQ(series[3], 5.0);
  EXPECT_DOUBLE_EQ(series[4], 7.0);
}

TEST(CleanTest, InterpolatePolicyIsLinear) {
  DailySeries series(Day(0), {0.0, kNaN, kNaN, 9.0});
  Clean(&series, MissingValuePolicy::kInterpolate);
  EXPECT_DOUBLE_EQ(series[1], 3.0);
  EXPECT_DOUBLE_EQ(series[2], 6.0);
}

TEST(CleanTest, InterpolateBoundaryGapsUseNearestValue) {
  DailySeries series(Day(0), {kNaN, 4.0, kNaN});
  Clean(&series, MissingValuePolicy::kInterpolate);
  EXPECT_DOUBLE_EQ(series[0], 4.0);
  EXPECT_DOUBLE_EQ(series[2], 4.0);
}

TEST(CleanTest, InterpolateAllNaNBecomesZero) {
  DailySeries series(Day(0), {kNaN, kNaN});
  Clean(&series, MissingValuePolicy::kInterpolate);
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_DOUBLE_EQ(series[1], 0.0);
}

TEST(CleanTest, ClampsInconsistentValues) {
  // 100000 s/day is physically impossible; -5 likewise.
  DailySeries series(Day(0), {100'000.0, -5.0, 40'000.0});
  const CleaningReport report = Clean(&series);
  EXPECT_EQ(report.clamped_high, 1u);
  EXPECT_EQ(report.clamped_low, 1u);
  EXPECT_DOUBLE_EQ(series[0], 86'400.0);
  EXPECT_DOUBLE_EQ(series[1], 0.0);
  EXPECT_DOUBLE_EQ(series[2], 40'000.0);
}

TEST(CleanTest, ClampBeforeFillKeepsMeanUnbiased) {
  // The glitch (1e9) must not leak into the mean used to fill the gap.
  DailySeries series(Day(0), {1e9, kNaN, 10.0});
  Clean(&series, MissingValuePolicy::kMean);
  EXPECT_DOUBLE_EQ(series[1], (86'400.0 + 10.0) / 2.0);
}

TEST(CleanTest, CustomLimits) {
  ConsistencyLimits limits;
  limits.max_daily_seconds = 50'000.0;
  DailySeries series(Day(0), {60'000.0});
  Clean(&series, MissingValuePolicy::kZero, limits);
  EXPECT_DOUBLE_EQ(series[0], 50'000.0);
}

TEST(NormalizeMinMaxTest, ScalesToUnitInterval) {
  DailySeries series(Day(0), {10.0, 20.0, 30.0});
  const MinMaxParams params = NormalizeMinMax(&series);
  EXPECT_DOUBLE_EQ(params.min, 10.0);
  EXPECT_DOUBLE_EQ(params.max, 30.0);
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_DOUBLE_EQ(series[1], 0.5);
  EXPECT_DOUBLE_EQ(series[2], 1.0);
}

TEST(NormalizeMinMaxTest, InverseRecoversOriginal) {
  DailySeries series(Day(0), {3.0, 7.0, 11.0});
  const MinMaxParams params = NormalizeMinMax(&series);
  EXPECT_DOUBLE_EQ(params.Inverse(series[1]), 7.0);
}

TEST(NormalizeMinMaxTest, ConstantSeriesMapsToZero) {
  DailySeries series(Day(0), {5.0, 5.0});
  NormalizeMinMax(&series);
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_DOUBLE_EQ(series[1], 0.0);
}

TEST(NormalizeMinMaxTest, SkipsNaN) {
  DailySeries series(Day(0), {0.0, kNaN, 10.0});
  NormalizeMinMax(&series);
  EXPECT_TRUE(std::isnan(series[1]));
  EXPECT_DOUBLE_EQ(series[2], 1.0);
}

TEST(ApplyMinMaxTest, UsesTrainedParams) {
  MinMaxParams params{0.0, 10.0};
  DailySeries test(Day(0), {5.0, 20.0});
  ApplyMinMax(params, &test);
  EXPECT_DOUBLE_EQ(test[0], 0.5);
  EXPECT_DOUBLE_EQ(test[1], 2.0);  // out-of-range values extrapolate
}

TEST(AggregateDailyTest, SumsReportsPerDay) {
  Table table = Table::Create({{"date", ColumnType::kString},
                               {"seconds", ColumnType::kDouble}})
                    .ValueOrDie();
  auto& date = table.mutable_column(0);
  auto& seconds = table.mutable_column(1);
  date.AppendString("2015-01-01");
  seconds.AppendDouble(100.0);
  date.AppendString("2015-01-01");
  seconds.AppendDouble(50.0);
  date.AppendString("2015-01-03");
  seconds.AppendDouble(75.0);

  const DailySeries series =
      AggregateDaily(table, "date", "seconds").ValueOrDie();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series.start_date(), Day(0));
  EXPECT_DOUBLE_EQ(series[0], 150.0);
  EXPECT_TRUE(std::isnan(series[1]));  // no report for Jan 2
  EXPECT_DOUBLE_EQ(series[2], 75.0);
}

TEST(AggregateDailyTest, AcceptsIntegerDayNumbers) {
  Table table = Table::Create({{"day", ColumnType::kInt64},
                               {"seconds", ColumnType::kInt64}})
                    .ValueOrDie();
  table.mutable_column(0).AppendInt64(Day(5).day_number());
  table.mutable_column(1).AppendInt64(42);
  const DailySeries series =
      AggregateDaily(table, "day", "seconds").ValueOrDie();
  EXPECT_EQ(series.start_date(), Day(5));
  EXPECT_DOUBLE_EQ(series[0], 42.0);
}

TEST(AggregateDailyTest, NullDurationMarksDayObserved) {
  Table table = Table::Create({{"date", ColumnType::kString},
                               {"seconds", ColumnType::kDouble}})
                    .ValueOrDie();
  table.mutable_column(0).AppendString("2015-01-01");
  table.mutable_column(1).AppendNull();
  const DailySeries series =
      AggregateDaily(table, "date", "seconds").ValueOrDie();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0], 0.0);  // observed, contributes nothing
}

TEST(AggregateDailyTest, ErrorCases) {
  Table empty = Table::Create({{"date", ColumnType::kString},
                               {"seconds", ColumnType::kDouble}})
                    .ValueOrDie();
  EXPECT_FALSE(AggregateDaily(empty, "date", "seconds").ok());
  EXPECT_FALSE(AggregateDaily(empty, "ghost", "seconds").ok());

  Table bad = Table::Create({{"date", ColumnType::kString},
                             {"seconds", ColumnType::kString}})
                  .ValueOrDie();
  bad.mutable_column(0).AppendString("2015-01-01");
  bad.mutable_column(1).AppendString("lots");
  EXPECT_FALSE(AggregateDaily(bad, "date", "seconds").ok());

  Table bad_date = Table::Create({{"date", ColumnType::kString},
                                  {"seconds", ColumnType::kDouble}})
                       .ValueOrDie();
  bad_date.mutable_column(0).AppendString("not-a-date");
  bad_date.mutable_column(1).AppendDouble(1.0);
  EXPECT_FALSE(AggregateDaily(bad_date, "date", "seconds").ok());
}

TEST(SeriesToTableTest, RoundTripsThroughAggregate) {
  DailySeries series(Day(0), {10.0, kNaN, 30.0});
  const Table table = SeriesToTable(series, "usage").ValueOrDie();
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_EQ(table.GetColumn("date").ValueOrDie()->StringAt(0), "2015-01-01");
  EXPECT_FALSE(table.GetColumn("usage").ValueOrDie()->IsValid(1));

  const DailySeries rebuilt =
      AggregateDaily(table, "date", "usage").ValueOrDie();
  EXPECT_EQ(rebuilt.size(), series.size());
  EXPECT_DOUBLE_EQ(rebuilt[0], 10.0);
  EXPECT_DOUBLE_EQ(rebuilt[2], 30.0);
}

}  // namespace
}  // namespace data
}  // namespace nextmaint
