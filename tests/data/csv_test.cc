#include "data/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace nextmaint {
namespace data {
namespace {

Result<Table> Parse(const std::string& text, CsvReadOptions options = {}) {
  std::istringstream stream(text);
  return ReadCsv(stream, options);
}

TEST(CsvReadTest, ParsesHeaderAndTypes) {
  const Table table =
      Parse("id,usage,label\n1,10.5,alpha\n2,20.25,beta\n").ValueOrDie();
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.ColumnNames(),
            (std::vector<std::string>{"id", "usage", "label"}));
  EXPECT_EQ(table.GetColumn("id").ValueOrDie()->type(), ColumnType::kInt64);
  EXPECT_EQ(table.GetColumn("usage").ValueOrDie()->type(),
            ColumnType::kDouble);
  EXPECT_EQ(table.GetColumn("label").ValueOrDie()->type(),
            ColumnType::kString);
  EXPECT_EQ(table.GetColumn("id").ValueOrDie()->Int64At(1), 2);
  EXPECT_DOUBLE_EQ(table.GetColumn("usage").ValueOrDie()->DoubleAt(0), 10.5);
  EXPECT_EQ(table.GetColumn("label").ValueOrDie()->StringAt(1), "beta");
}

TEST(CsvReadTest, MixedIntAndDoubleWidensToDouble) {
  const Table table = Parse("x\n1\n2.5\n").ValueOrDie();
  EXPECT_EQ(table.column(0).type(), ColumnType::kDouble);
  EXPECT_DOUBLE_EQ(table.column(0).DoubleAt(0), 1.0);
}

TEST(CsvReadTest, NullTokensBecomeNulls) {
  const Table table = Parse("a,b\n1,x\n,y\nNaN,z\n").ValueOrDie();
  const Column* a = table.GetColumn("a").ValueOrDie();
  EXPECT_EQ(a->type(), ColumnType::kInt64);  // non-null cells are ints
  EXPECT_TRUE(a->IsValid(0));
  EXPECT_FALSE(a->IsValid(1));
  EXPECT_FALSE(a->IsValid(2));
  EXPECT_EQ(table.null_count(), 2u);
}

TEST(CsvReadTest, CustomNullTokens) {
  CsvReadOptions options;
  options.null_tokens = {"-"};
  const Table table = Parse("a\n-\n5\n", options).ValueOrDie();
  EXPECT_FALSE(table.column(0).IsValid(0));
  EXPECT_TRUE(table.column(0).IsValid(1));
}

TEST(CsvReadTest, NoHeaderGeneratesNames) {
  CsvReadOptions options;
  options.has_header = false;
  const Table table = Parse("1,2\n3,4\n", options).ValueOrDie();
  EXPECT_EQ(table.ColumnNames(), (std::vector<std::string>{"c0", "c1"}));
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(CsvReadTest, CustomDelimiter) {
  CsvReadOptions options;
  options.delimiter = ';';
  const Table table = Parse("a;b\n1;2\n", options).ValueOrDie();
  EXPECT_EQ(table.num_columns(), 2u);
}

TEST(CsvReadTest, RaggedRowFails) {
  const Result<Table> result = Parse("a,b\n1,2\n3\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataError);
  // The error message pinpoints the offending line.
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

TEST(CsvReadTest, HandlesCrLfLineEndings) {
  const Table table = Parse("a,b\r\n1,2\r\n").ValueOrDie();
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.column(1).Int64At(0), 2);
}

TEST(CsvReadTest, EmptyInputYieldsEmptyTable) {
  const Table table = Parse("").ValueOrDie();
  EXPECT_EQ(table.num_columns(), 0u);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(CsvReadTest, HeaderOnly) {
  const Table table = Parse("a,b\n").ValueOrDie();
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(CsvReadFileTest, MissingFileFails) {
  const Result<Table> result = ReadCsvFile("/nonexistent/path.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(CsvWriteTest, RoundTripsThroughText) {
  const Table original =
      Parse("id,usage,label\n1,10.5,alpha\n2,,beta\n").ValueOrDie();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(original, out).ok());
  const Table reparsed = Parse(out.str()).ValueOrDie();
  EXPECT_EQ(reparsed.num_rows(), original.num_rows());
  EXPECT_EQ(reparsed.ColumnNames(), original.ColumnNames());
  EXPECT_FALSE(reparsed.GetColumn("usage").ValueOrDie()->IsValid(1));
  EXPECT_DOUBLE_EQ(reparsed.GetColumn("usage").ValueOrDie()->DoubleAt(0),
                   10.5);
}

TEST(CsvWriteTest, PrecisionOption) {
  const Table table = Parse("x\n1.23456789\n").ValueOrDie();
  std::ostringstream out;
  CsvWriteOptions options;
  options.double_precision = 2;
  ASSERT_TRUE(WriteCsv(table, out).ok());
  CsvWriteOptions two;
  two.double_precision = 2;
  std::ostringstream out2;
  ASSERT_TRUE(WriteCsv(table, out2, two).ok());
  EXPECT_NE(out2.str().find("1.23"), std::string::npos);
  EXPECT_EQ(out2.str().find("1.2345"), std::string::npos);
}

TEST(CsvWriteTest, NoHeaderOption) {
  const Table table = Parse("a\n1\n").ValueOrDie();
  CsvWriteOptions options;
  options.write_header = false;
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(table, out, options).ok());
  EXPECT_EQ(out.str(), "1\n");
}

TEST(CsvWriteFileTest, RoundTripsThroughDisk) {
  const Table table = Parse("a,b\n1,x\n2,y\n").ValueOrDie();
  const std::string path = testing::TempDir() + "/nextmaint_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  const Table reloaded = ReadCsvFile(path).ValueOrDie();
  EXPECT_EQ(reloaded.num_rows(), 2u);
  EXPECT_EQ(reloaded.GetColumn("b").ValueOrDie()->StringAt(1), "y");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace nextmaint
