#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "data/csv.h"
#include "data/preprocess.h"

/// Fuzz-style corpus for the CSV ingestion path: every fixture under
/// tests/data/corpus/ is an adversarial file observed (or plausible) from
/// fleet telematics exports — truncated rows, embedded NULs, exotic line
/// endings, duplicate dates, overflowing magnitudes. The contract under
/// test: ReadCsv and AggregateDaily stay well-defined on all of them —
/// a clean Status in, a clean Status or usable series out, never a crash,
/// hang or silent NaN leak past Clean().

namespace nextmaint {
namespace data {
namespace {

namespace fs = std::filesystem;

struct CorpusExpectation {
  /// Whether ReadCsvFile must succeed.
  bool read_ok;
  /// Whether AggregateDaily(date, utilization_s) on the read table must
  /// succeed. Meaningless when read_ok is false.
  bool aggregate_ok;
};

/// One entry per fixture; the test fails when the directory and this table
/// drift apart, so adding a fixture forces writing down its contract.
const std::map<std::string, CorpusExpectation>& Expectations() {
  static const std::map<std::string, CorpusExpectation> expectations = {
      {"bad_dates.csv", {true, false}},
      {"big_magnitudes.csv", {true, true}},
      {"cr_only.csv", {true, false}},
      {"crlf.csv", {true, true}},
      {"duplicate_columns.csv", {false, false}},
      {"duplicate_dates.csv", {true, true}},
      {"embedded_nul.csv", {true, false}},
      {"empty.csv", {true, false}},
      {"gap_dates.csv", {true, true}},
      {"header_only.csv", {true, false}},
      {"huge_field.csv", {true, false}},
      {"mixed_line_endings.csv", {true, true}},
      {"nan_inf_tokens.csv", {true, true}},
      {"negative_usage.csv", {true, true}},
      {"null_tokens.csv", {true, true}},
      {"overflow_to_string.csv", {true, false}},
      {"quoted_fields.csv", {false, false}},
      {"ragged_extra_field.csv", {false, false}},
      {"semicolon_delimiter.csv", {true, false}},
      {"truncated_row.csv", {false, false}},
      {"unsorted_dates.csv", {true, true}},
      {"utf8_bom.csv", {true, false}},
      {"wide_header.csv", {true, false}},
  };
  return expectations;
}

std::string CorpusDir() { return NEXTMAINT_TEST_CORPUS_DIR; }

TEST(CsvCorpusTest, ExpectationTableMatchesCheckedInFixtures) {
  std::set<std::string> on_disk;
  for (const auto& entry : fs::directory_iterator(CorpusDir())) {
    on_disk.insert(entry.path().filename().string());
  }
  std::set<std::string> expected;
  for (const auto& [name, unused] : Expectations()) expected.insert(name);
  EXPECT_EQ(on_disk, expected)
      << "tests/data/corpus/ and the expectation table must list the same "
         "fixtures";
}

TEST(CsvCorpusTest, EveryFixtureStaysWellDefined) {
  for (const auto& [name, expect] : Expectations()) {
    SCOPED_TRACE(name);
    const std::string path = CorpusDir() + "/" + name;
    const Result<Table> table = ReadCsvFile(path);
    EXPECT_EQ(table.ok(), expect.read_ok)
        << (table.ok() ? "unexpectedly readable"
                       : table.status().ToString());
    if (!table.ok()) {
      // Failures must be categorized errors with a message, not aborts.
      EXPECT_NE(table.status().code(), StatusCode::kOk);
      EXPECT_FALSE(table.status().message().empty());
      continue;
    }
    Result<DailySeries> series =
        AggregateDaily(table.ValueOrDie(), "date", "utilization_s");
    EXPECT_EQ(series.ok(), expect.aggregate_ok)
        << (series.ok() ? "unexpectedly aggregable"
                        : series.status().ToString());
    if (!series.ok()) {
      EXPECT_FALSE(series.status().message().empty());
      continue;
    }
    // An aggregable fixture must clean into a fully finite series: this is
    // the boundary past which the ML layer assumes well-formed numbers.
    DailySeries cleaned = std::move(series).ValueOrDie();
    Clean(&cleaned);
    for (size_t i = 0; i < cleaned.size(); ++i) {
      EXPECT_TRUE(std::isfinite(cleaned[i])) << "day " << i;
    }
  }
}

TEST(CsvCorpusTest, DuplicateDatesAreSummed) {
  const Result<Table> table =
      ReadCsvFile(CorpusDir() + "/duplicate_dates.csv");
  ASSERT_TRUE(table.ok()) << table.status();
  const Result<DailySeries> series =
      AggregateDaily(table.ValueOrDie(), "date", "utilization_s");
  ASSERT_TRUE(series.ok()) << series.status();
  ASSERT_EQ(series.ValueOrDie().size(), 2u);
  EXPECT_DOUBLE_EQ(series.ValueOrDie()[0], 5400.0);  // 3600 + 1800
  EXPECT_DOUBLE_EQ(series.ValueOrDie()[1], 600.0);
}

TEST(CsvCorpusTest, HundredThousandColumnHeaderCompletesQuickly) {
  // Generated rather than checked in: the point is the O(columns) table
  // assembly (a linear duplicate-name scan in Table::AddColumn turned this
  // into ~5e9 string compares, an effective hang).
  std::ostringstream input;
  input << "date";
  for (int c = 1; c < 100'000; ++c) input << ",c" << c;
  input << "\n2015-01-01";
  for (int c = 1; c < 100'000; ++c) input << ",1";
  input << "\n";
  std::istringstream stream(input.str());
  const Result<Table> table = ReadCsv(stream);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table.ValueOrDie().num_columns(), 100'000u);
  EXPECT_EQ(table.ValueOrDie().num_rows(), 1u);
  EXPECT_TRUE(table.ValueOrDie().GetColumn("c99999").ok());
}

}  // namespace
}  // namespace data
}  // namespace nextmaint
