#include "serve/daemon.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/failpoints.h"
#include "core/scheduler.h"
#include "serve/protocol.h"
#include "telematics/fleet.h"

/// FleetDaemon tests: the sharded front door over PR 5's ServingEngine.
/// The headline invariants (ISSUE 7 acceptance): a daemon-served fleet's
/// forecasts are byte-identical to a batch FleetScheduler fed the same
/// event stream — at 1 shard for any fleet, and at 1 AND 4 shards for
/// fleets of old vehicles (per-vehicle models are independent of the
/// shard-partitioned cold-start corpus) — and a full shard queue answers
/// Overloaded without enqueuing or blocking anything.

namespace nextmaint {
namespace serve {
namespace {

using protocol::AckResponse;
using protocol::AppendRequest;
using protocol::ErrorResponse;
using protocol::ForecastBatchResponse;
using protocol::GetForecastRequest;
using protocol::LoadHistoryRequest;
using protocol::OverloadedResponse;
using protocol::RefreshDoneResponse;
using protocol::RefreshRequest;
using protocol::Response;
using protocol::ShutdownRequest;
using protocol::StatsRequest;
using protocol::StatsResponse;

constexpr double kTv = 500'000.0;

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

core::SchedulerOptions FastOptions() {
  core::SchedulerOptions options;
  options.maintenance_interval_s = kTv;
  options.window = 3;
  options.algorithms = {"BL", "LR"};
  options.unified_algorithm = "LR";
  options.selection.tune = false;
  options.selection.resampling_shifts = 0;
  return options;
}

data::DailySeries SimulatedVehicle(uint64_t seed, int days) {
  Rng rng(seed);
  telem::VehicleProfile profile = telem::DefaultFleetProfiles(1, &rng)[0];
  profile.maintenance_interval_s = kTv;
  Rng sim_rng(seed * 7 + 3);
  return telem::SimulateVehicle(profile, Day(0), days, 0.0, &sim_rng)
      .ValueOrDie()
      .utilization;
}

/// One vehicle of the equality fleets: full series + warm-start cut.
struct VehicleSpec {
  std::string id;
  data::DailySeries series;
  size_t warm;
};

/// Mixed-category fleet (old / crossing / new) — equality holds at 1 shard.
std::vector<VehicleSpec> MixedFleet() {
  std::vector<VehicleSpec> fleet;
  fleet.push_back({"old1", SimulatedVehicle(101, 600), 560});
  // 15000 s/day: crosses semi-new then old during the replay.
  fleet.push_back({"cross",
                   data::DailySeries(Day(0), std::vector<double>(48, 15'000.0)),
                   20});
  // 500 s/day: stays new forever (cold-start model consumer).
  fleet.push_back({"fresh",
                   data::DailySeries(Day(0), std::vector<double>(35, 500.0)),
                   5});
  return fleet;
}

/// All-old fleet — every vehicle trains on its own history, so equality
/// holds at any shard count.
std::vector<VehicleSpec> OldFleet() {
  std::vector<VehicleSpec> fleet;
  fleet.push_back({"old1", SimulatedVehicle(201, 600), 560});
  fleet.push_back({"old2", SimulatedVehicle(202, 600), 560});
  fleet.push_back({"old3", SimulatedVehicle(203, 600), 560});
  return fleet;
}

/// Batch ground truth over exactly `ingested[id]` days per vehicle.
core::FleetScheduler BatchScheduler(
    const std::vector<VehicleSpec>& fleet,
    const std::map<std::string, size_t>& ingested,
    const core::SchedulerOptions& options) {
  core::FleetScheduler scheduler(options);
  for (const VehicleSpec& v : fleet) {
    EXPECT_TRUE(scheduler.RegisterVehicle(v.id, v.series.start_date()).ok());
    const size_t days = ingested.at(v.id);
    if (days == 0) continue;
    EXPECT_TRUE(scheduler.IngestSeries(v.id, v.series.Slice(0, days)).ok());
  }
  EXPECT_TRUE(scheduler.TrainAll().ok());
  return scheduler;
}

/// Drives the whole fleet event stream through the daemon: warm-start
/// LoadHistory per vehicle, then the remaining days as pipelined appends,
/// then one Refresh barrier. Returns how many days each vehicle saw.
std::map<std::string, size_t> DriveFleet(FleetDaemon* daemon,
                                         const std::vector<VehicleSpec>& fleet) {
  std::map<std::string, size_t> ingested;
  for (const VehicleSpec& v : fleet) {
    LoadHistoryRequest load;
    load.vehicle_id = v.id;
    load.start_day = v.series.start_date();
    for (size_t i = 0; i < v.warm; ++i) load.values.push_back(v.series[i]);
    const Response response = daemon->Execute(load);
    EXPECT_TRUE(std::holds_alternative<AckResponse>(response)) << v.id;
    ingested[v.id] = v.warm;
  }
  // Day-by-day live feed, pipelined: all futures from one day are awaited
  // together, which exercises the whole-queue batching path.
  size_t longest = 0;
  for (const VehicleSpec& v : fleet) longest = std::max(longest, v.series.size());
  for (size_t step = 0; ; ++step) {
    std::vector<std::future<Response>> pending;
    for (const VehicleSpec& v : fleet) {
      const size_t idx = ingested[v.id];
      if (idx >= v.series.size()) continue;
      AppendRequest append;
      append.vehicle_id = v.id;
      append.day = v.series.start_date().AddDays(static_cast<int64_t>(idx));
      append.seconds = v.series[idx];
      pending.push_back(daemon->SubmitAsync(append));
      ++ingested[v.id];
    }
    if (pending.empty()) break;
    for (std::future<Response>& f : pending) {
      EXPECT_TRUE(std::holds_alternative<AckResponse>(f.get()));
    }
  }
  const Response refreshed = daemon->Execute(RefreshRequest{});
  EXPECT_TRUE(std::holds_alternative<RefreshDoneResponse>(refreshed));
  return ingested;
}

/// All published forecasts across every shard, keyed by vehicle.
std::map<std::string, core::MaintenanceForecast> DaemonForecasts(
    const FleetDaemon& daemon) {
  std::map<std::string, core::MaintenanceForecast> by_id;
  for (int s = 0; s < daemon.shards(); ++s) {
    const auto snapshot = daemon.engine(static_cast<size_t>(s)).Snapshot();
    for (const core::MaintenanceForecast& f : snapshot->forecasts) {
      by_id[f.vehicle_id] = f;
    }
  }
  return by_id;
}

/// Requires the daemon's published forecasts to be bit-identical to the
/// batch scheduler's, field by field.
void ExpectMatchesBatch(const FleetDaemon& daemon,
                        const core::FleetScheduler& batch,
                        const std::string& label) {
  const std::map<std::string, core::MaintenanceForecast> got =
      DaemonForecasts(daemon);
  const std::vector<core::MaintenanceForecast> want =
      batch.FleetForecast().ValueOrDie();
  ASSERT_EQ(got.size(), want.size()) << label;
  for (const core::MaintenanceForecast& w : want) {
    const auto it = got.find(w.vehicle_id);
    ASSERT_NE(it, got.end()) << label << " " << w.vehicle_id;
    EXPECT_EQ(it->second.category, w.category) << label << " " << w.vehicle_id;
    EXPECT_EQ(it->second.model_name, w.model_name)
        << label << " " << w.vehicle_id;
    EXPECT_EQ(it->second.days_left, w.days_left)
        << label << " " << w.vehicle_id;
    EXPECT_EQ(it->second.usage_seconds_left, w.usage_seconds_left)
        << label << " " << w.vehicle_id;
    EXPECT_EQ(it->second.predicted_date, w.predicted_date)
        << label << " " << w.vehicle_id;
  }
}

DaemonOptions Options(int shards, size_t max_queue = 1024,
                      uint64_t batch_window = 0) {
  DaemonOptions options;
  options.scheduler = FastOptions();
  options.shards = shards;
  options.max_queue = max_queue;
  options.batch_window = batch_window;
  return options;
}

TEST(FleetDaemonTest, AppendAutoRegistersAndServesAfterRefresh) {
  FleetDaemon daemon(Options(2));
  ASSERT_TRUE(daemon.Start().ok());

  for (int i = 0; i < 40; ++i) {
    AppendRequest append;
    append.vehicle_id = "v1";
    append.day = Day(i);
    append.seconds = 15'000.0;
    ASSERT_TRUE(std::holds_alternative<AckResponse>(daemon.Execute(append)))
        << "day " << i;
  }

  // Not refreshed yet: the vehicle is registered but not in any published
  // snapshot.
  GetForecastRequest read;
  read.vehicle_ids = {"v1"};
  {
    const Response response = daemon.Execute(read);
    const auto* batch = std::get_if<ForecastBatchResponse>(&response);
    ASSERT_NE(batch, nullptr);
    ASSERT_EQ(batch->entries.size(), 1u);
    EXPECT_EQ(batch->entries[0].status_code, StatusCode::kNotFound);
  }

  const Response refreshed = daemon.Execute(RefreshRequest{});
  const auto* done = std::get_if<RefreshDoneResponse>(&refreshed);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->shards, 2u);
  EXPECT_GE(done->epoch, 1u);

  {
    const Response response = daemon.Execute(read);
    const auto* batch = std::get_if<ForecastBatchResponse>(&response);
    ASSERT_NE(batch, nullptr);
    ASSERT_EQ(batch->entries.size(), 1u);
    EXPECT_EQ(batch->entries[0].status_code, StatusCode::kOk);
    EXPECT_FALSE(batch->entries[0].model_name.empty());
    EXPECT_GE(batch->entries[0].epoch, 1u);
  }
  daemon.Stop();
}

TEST(FleetDaemonTest, MixedFleetMatchesBatchAtOneShard) {
  FleetDaemon daemon(Options(1));
  ASSERT_TRUE(daemon.Start().ok());
  const std::map<std::string, size_t> ingested =
      DriveFleet(&daemon, MixedFleet());
  const core::FleetScheduler batch =
      BatchScheduler(MixedFleet(), ingested, FastOptions());
  ExpectMatchesBatch(daemon, batch, "mixed@1");
  daemon.Stop();
}

TEST(FleetDaemonTest, OldFleetMatchesBatchAtOneAndFourShards) {
  const std::vector<VehicleSpec> fleet = OldFleet();
  for (const int shards : {1, 4}) {
    FleetDaemon daemon(Options(shards));
    ASSERT_TRUE(daemon.Start().ok());
    const std::map<std::string, size_t> ingested = DriveFleet(&daemon, fleet);
    const core::FleetScheduler batch =
        BatchScheduler(fleet, ingested, FastOptions());
    ExpectMatchesBatch(daemon, batch, "old@" + std::to_string(shards));
    daemon.Stop();
  }
}

TEST(FleetDaemonTest, FullQueueAnswersOverloadedWithoutBlocking) {
  // Workers not started: everything submitted stays queued, making the
  // overflow deterministic.
  FleetDaemon daemon(Options(1, /*max_queue=*/2));

  const auto append_at = [](int day) {
    AppendRequest append;
    append.vehicle_id = "v1";
    append.day = Day(day);
    append.seconds = 1000.0;
    return append;
  };
  std::future<Response> first = daemon.SubmitAsync(append_at(0));
  std::future<Response> second = daemon.SubmitAsync(append_at(1));
  std::future<Response> third = daemon.SubmitAsync(append_at(2));

  // The rejection is immediate — no worker is running, yet the future is
  // already resolved.
  ASSERT_EQ(third.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const Response rejected = third.get();
  const auto* overloaded = std::get_if<OverloadedResponse>(&rejected);
  ASSERT_NE(overloaded, nullptr);
  EXPECT_EQ(overloaded->shard, 0u);
  EXPECT_EQ(overloaded->queue_depth, 2u);
  EXPECT_EQ(overloaded->max_queue, 2u);

  // The queued writes were admitted and survive: Start() applies them.
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_TRUE(std::holds_alternative<AckResponse>(first.get()));
  EXPECT_TRUE(std::holds_alternative<AckResponse>(second.get()));

  const StatsResponse stats = daemon.Stats();
  EXPECT_EQ(stats.overloaded, 1u);
  EXPECT_EQ(stats.appends, 2u);
  daemon.Stop();
}

TEST(FleetDaemonTest, BatchWindowAutoRefreshesWithoutExplicitBarrier) {
  FleetDaemon daemon(Options(1, 1024, /*batch_window=*/5));
  ASSERT_TRUE(daemon.Start().ok());
  for (int i = 0; i < 40; ++i) {
    AppendRequest append;
    append.vehicle_id = "v1";
    append.day = Day(i);
    append.seconds = 15'000.0;
    ASSERT_TRUE(std::holds_alternative<AckResponse>(daemon.Execute(append)));
  }
  // 40 appends at window 5 guarantee at least one auto-refresh: the
  // vehicle is readable with no Refresh request ever sent.
  GetForecastRequest read;
  read.vehicle_ids = {"v1"};
  const Response response = daemon.Execute(read);
  const auto* batch = std::get_if<ForecastBatchResponse>(&response);
  ASSERT_NE(batch, nullptr);
  ASSERT_EQ(batch->entries.size(), 1u);
  EXPECT_EQ(batch->entries[0].status_code, StatusCode::kOk);
  daemon.Stop();
}

TEST(FleetDaemonTest, EmptyLoadHistoryIsAnErrorResponse) {
  FleetDaemon daemon(Options(1));
  ASSERT_TRUE(daemon.Start().ok());
  LoadHistoryRequest load;
  load.vehicle_id = "v1";
  load.start_day = Day(0);
  const Response response = daemon.Execute(load);
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, StatusCode::kInvalidArgument);
  daemon.Stop();
}

TEST(FleetDaemonTest, HandleFrameSurvivesGarbageAndKeepsServing) {
  FleetDaemon daemon(Options(1));
  ASSERT_TRUE(daemon.Start().ok());

  const std::vector<uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF, 0x00};
  const std::vector<uint8_t> reply = daemon.HandleFrame(garbage);
  const Result<Response> decoded = protocol::DecodeResponse(
      std::span<const uint8_t>(reply).subspan(protocol::kLengthPrefixBytes));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const auto* error = std::get_if<ErrorResponse>(&decoded.ValueOrDie());
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, StatusCode::kInvalidArgument);

  // The daemon shrugged it off: a well-formed frame still round-trips.
  AppendRequest append;
  append.vehicle_id = "v1";
  append.day = Day(0);
  append.seconds = 1000.0;
  const std::vector<uint8_t> frame = protocol::EncodeRequest(append);
  const std::vector<uint8_t> ok_reply = daemon.HandleFrame(
      std::span<const uint8_t>(frame).subspan(protocol::kLengthPrefixBytes));
  const Result<Response> ok_decoded = protocol::DecodeResponse(
      std::span<const uint8_t>(ok_reply)
          .subspan(protocol::kLengthPrefixBytes));
  ASSERT_TRUE(ok_decoded.ok());
  EXPECT_TRUE(std::holds_alternative<AckResponse>(ok_decoded.ValueOrDie()));

  const StatsResponse stats = daemon.Stats();
  EXPECT_EQ(stats.frames, 2u);
  EXPECT_EQ(stats.decode_errors, 1u);
  daemon.Stop();
}

TEST(FleetDaemonTest, ShardingIsStableAndCoversAllShards) {
  FleetDaemon daemon(Options(4));
  // ShardOf is pinned to the protocol hash — clients predict placement.
  for (const std::string id : {"v1", "v2", "abc", ""}) {
    EXPECT_EQ(daemon.ShardOf(id), protocol::StableVehicleHash(id) % 4);
  }
}

TEST(FleetDaemonTest, ShutdownRequestSetsFlagAndAcks) {
  FleetDaemon daemon(Options(1));
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_FALSE(daemon.ShutdownRequested());
  const Response response = daemon.Execute(ShutdownRequest{});
  EXPECT_TRUE(std::holds_alternative<AckResponse>(response));
  EXPECT_TRUE(daemon.ShutdownRequested());
  daemon.Stop();
}

TEST(FleetDaemonTest, StatsReportsPerShardState) {
  FleetDaemon daemon(Options(2));
  ASSERT_TRUE(daemon.Start().ok());
  for (const std::string id : {"v1", "v2", "v3"}) {
    AppendRequest append;
    append.vehicle_id = id;
    append.day = Day(0);
    append.seconds = 1000.0;
    ASSERT_TRUE(std::holds_alternative<AckResponse>(daemon.Execute(append)));
  }
  ASSERT_TRUE(std::holds_alternative<RefreshDoneResponse>(
      daemon.Execute(RefreshRequest{})));

  const Response response = daemon.Execute(StatsRequest{});
  const auto* stats = std::get_if<StatsResponse>(&response);
  ASSERT_NE(stats, nullptr);
  ASSERT_EQ(stats->shards.size(), 2u);
  uint64_t vehicles = 0;
  uint64_t appends = 0;
  for (const protocol::ShardStats& shard : stats->shards) {
    vehicles += shard.vehicles;
    appends += shard.appends;
    EXPECT_EQ(shard.queue_depth, 0u);
    EXPECT_EQ(shard.dirty, 0u);
  }
  EXPECT_EQ(vehicles, 3u);
  EXPECT_EQ(appends, 3u);
  EXPECT_EQ(stats->appends, 3u);
}

TEST(FleetDaemonTest, RefreshBeforeStartIsAnError) {
  FleetDaemon daemon(Options(1));
  const Response response = daemon.Execute(RefreshRequest{});
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, StatusCode::kFailedPrecondition);
}

TEST(FleetDaemonTest, EnqueueFailpointSurfacesAsErrorResponse) {
  if (!failpoints::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  failpoints::DisarmAll();
  ASSERT_TRUE(failpoints::Arm("serve.daemon.enqueue").ok());
  FleetDaemon daemon(Options(1));
  ASSERT_TRUE(daemon.Start().ok());
  AppendRequest append;
  append.vehicle_id = "v1";
  append.day = Day(0);
  append.seconds = 1000.0;
  const Response response = daemon.Execute(append);
  failpoints::DisarmAll();
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->message.find("injected failure"), std::string::npos);
  daemon.Stop();
}

TEST(FleetDaemonTest, RefreshFailpointFailsTheBarrierDeterministically) {
  if (!failpoints::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  failpoints::DisarmAll();
  FleetDaemon daemon(Options(2));
  ASSERT_TRUE(daemon.Start().ok());
  for (const std::string id : {"v1", "v2", "v3"}) {
    AppendRequest append;
    append.vehicle_id = id;
    append.day = Day(0);
    append.seconds = 1000.0;
    ASSERT_TRUE(std::holds_alternative<AckResponse>(daemon.Execute(append)));
  }
  // Ordinal 1 = shard 0: exactly that leg fails, and the merged barrier
  // error names it.
  ASSERT_TRUE(failpoints::Arm("serve.daemon.refresh:1").ok());
  const Response response = daemon.Execute(RefreshRequest{});
  failpoints::DisarmAll();
  const auto* error = std::get_if<ErrorResponse>(&response);
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->message.find("shard 0 refresh failed"), std::string::npos)
      << error->message;
  daemon.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace nextmaint
