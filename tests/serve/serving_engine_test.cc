#include "serve/serving_engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoints.h"
#include "core/scheduler.h"
#include "telematics/fleet.h"

namespace nextmaint {
namespace serve {
namespace {

constexpr double kTv = 500'000.0;

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

core::SchedulerOptions FastOptions(int num_threads = 0) {
  core::SchedulerOptions options;
  options.maintenance_interval_s = kTv;
  options.window = 3;
  options.algorithms = {"BL", "LR"};
  options.unified_algorithm = "LR";
  options.selection.tune = false;
  options.selection.resampling_shifts = 0;
  options.num_threads = num_threads;
  return options;
}

data::DailySeries SimulatedVehicle(uint64_t seed, int days) {
  Rng rng(seed);
  telem::VehicleProfile profile = telem::DefaultFleetProfiles(1, &rng)[0];
  profile.maintenance_interval_s = kTv;
  Rng sim_rng(seed * 7 + 3);
  return telem::SimulateVehicle(profile, Day(0), days, 0.0, &sim_rng)
      .ValueOrDie()
      .utilization;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Byte content of a scheduler checkpoint, via a throwaway temp file.
std::string CheckpointBytes(const core::FleetScheduler& scheduler,
                            const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(scheduler.SaveCheckpoint(path).ok());
  std::string bytes = ReadAll(path);
  std::remove(path.c_str());
  return bytes;
}

/// Requires every forecast field to be bit-identical, in the same order.
void ExpectForecastsIdentical(
    const std::vector<core::MaintenanceForecast>& got,
    const std::vector<core::MaintenanceForecast>& want,
    const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].vehicle_id, want[i].vehicle_id) << label << " #" << i;
    EXPECT_EQ(got[i].category, want[i].category) << label << " #" << i;
    EXPECT_EQ(got[i].model_name, want[i].model_name) << label << " #" << i;
    EXPECT_EQ(got[i].days_left, want[i].days_left)
        << label << " " << got[i].vehicle_id;
    EXPECT_EQ(got[i].usage_seconds_left, want[i].usage_seconds_left)
        << label << " " << got[i].vehicle_id;
    EXPECT_EQ(got[i].predicted_date, want[i].predicted_date)
        << label << " " << got[i].vehicle_id;
  }
}

/// One vehicle of the property fleet: a full series plus how much of it the
/// engine warm-starts on before the day-by-day replay.
struct VehicleSpec {
  std::string id;
  data::DailySeries series;
  size_t warm;
};

/// The fleet the property test replays. Covers every category transition
/// the engine must survive: two old vehicles (stable corpus members), one
/// vehicle crossing semi-new -> old mid-replay (its first completed cycle
/// joins the corpus and must dirty every cold-start consumer), one vehicle
/// crossing new -> semi-new, and one staying new throughout.
std::vector<VehicleSpec> PropertyFleet() {
  std::vector<VehicleSpec> fleet;
  fleet.push_back({"old1", SimulatedVehicle(101, 600), 560});
  fleet.push_back({"old2", SimulatedVehicle(102, 600), 560});
  // 15000 s/day: 250k (semi-new) after ~17 days, 500k (old) after ~34.
  fleet.push_back({"cross",
                   data::DailySeries(Day(0), std::vector<double>(48, 15'000.0)),
                   20});
  // 18000 s/day starting tiny: crosses T_v/2 during the replay.
  fleet.push_back({"rise",
                   data::DailySeries(Day(0), std::vector<double>(40, 18'000.0)),
                   8});
  // 500 s/day: stays new forever.
  fleet.push_back({"fresh",
                   data::DailySeries(Day(0), std::vector<double>(35, 500.0)),
                   5});
  return fleet;
}

/// Scheduler options exercising the tree learners (and with them the
/// binned training core): RF in the per-vehicle selection, XGB as the
/// unified cold-start model, small settings so the property replay stays
/// fast.
core::SchedulerOptions TreeOptions(int num_threads, ml::TreeCore core) {
  core::SchedulerOptions options = FastOptions(num_threads);
  options.algorithms = {"BL", "RF"};
  options.unified_algorithm = "XGB";
  options.tree_core = core;
  // Selection is untuned (library defaults); only the cold-start models
  // take explicit params, trimmed for test speed.
  options.cold_start.model_params = {{"num_estimators", 6},
                                     {"num_iterations", 8},
                                     {"max_depth", 4},
                                     {"max_bins", 64},
                                     {"min_samples_leaf", 2}};
  return options;
}

/// A from-scratch batch run over exactly `ingested[id]` days per vehicle:
/// the ground truth the incremental engine must be bit-identical to.
core::FleetScheduler BatchScheduler(
    const std::vector<VehicleSpec>& fleet,
    const std::map<std::string, size_t>& ingested,
    const core::SchedulerOptions& options) {
  core::FleetScheduler scheduler(options);
  for (const VehicleSpec& v : fleet) {
    EXPECT_TRUE(scheduler.RegisterVehicle(v.id, v.series.start_date()).ok());
    const size_t days = ingested.at(v.id);
    if (days == 0) continue;
    EXPECT_TRUE(scheduler.IngestSeries(v.id, v.series.Slice(0, days)).ok());
  }
  EXPECT_TRUE(scheduler.TrainAll().ok());
  return scheduler;
}

/// The tentpole invariant (ISSUE 5 acceptance): random interleavings of
/// appends and refreshes produce forecasts bit-identical to a from-scratch
/// batch run over the same data, at 1 and 4 threads — including vehicles
/// that change category (and corpus membership) mid-replay.
TEST(ServingEngineTest, IncrementalMatchesBatchUnderRandomInterleavings) {
  for (const int threads : {1, 4}) {
    for (const uint64_t round : {1u, 2u}) {
      const std::vector<VehicleSpec> fleet = PropertyFleet();
      ServingEngine engine(FastOptions(threads));
      std::map<std::string, size_t> ingested;
      for (const VehicleSpec& v : fleet) {
        ASSERT_TRUE(engine.Register(v.id, v.series.start_date()).ok());
        if (v.warm > 0) {
          ASSERT_TRUE(
              engine.LoadHistory(v.id, v.series.Slice(0, v.warm)).ok());
        }
        ingested[v.id] = v.warm;
      }
      ASSERT_TRUE(engine.RefreshForecasts().ok());

      // The schedule depends only on (round) so both thread counts replay
      // the identical interleaving.
      Rng schedule(900 + round);
      const std::string label =
          "threads=" + std::to_string(threads) +
          " round=" + std::to_string(round);
      for (int step = 0; step < 30; ++step) {
        for (const VehicleSpec& v : fleet) {
          size_t& next = ingested[v.id];
          if (next >= v.series.size()) continue;
          // Vehicles advance at random, uneven rates.
          if (!schedule.Bernoulli(0.75)) continue;
          const Date day =
              v.series.start_date().AddDays(static_cast<int64_t>(next));
          ASSERT_TRUE(engine.Append(v.id, day, v.series[next]).ok())
              << label << " " << v.id;
          ++next;
        }
        if (schedule.Bernoulli(0.4)) {
          ASSERT_TRUE(engine.RefreshForecasts().ok()) << label;
        }
      }
      ASSERT_TRUE(engine.RefreshForecasts().ok()) << label;

      const core::FleetScheduler batch =
          BatchScheduler(fleet, ingested, FastOptions(threads));
      ExpectForecastsIdentical(engine.Snapshot()->forecasts,
                               batch.FleetForecast().ValueOrDie(), label);
      // The trained state itself must match byte for byte, not just the
      // forecasts derived from it.
      EXPECT_EQ(CheckpointBytes(engine.scheduler(), "serve_inc.txt"),
                CheckpointBytes(batch, "serve_batch.txt"))
          << label;
    }
  }
}

/// The binned-core serving contract (docs/binned-training.md): with tree
/// learners in the loop, append/refresh interleavings must stay checkpoint-
/// byte-identical to a from-scratch batch run — and the batch run itself
/// must be byte-identical whether it trains on the binned or the row core.
TEST(ServingEngineTest, BinnedInterleavingMatchesBatchAcrossCores) {
  for (const int threads : {1, 4}) {
    const std::vector<VehicleSpec> fleet = PropertyFleet();
    ServingEngine engine(TreeOptions(threads, ml::TreeCore::kBinned));
    std::map<std::string, size_t> ingested;
    for (const VehicleSpec& v : fleet) {
      ASSERT_TRUE(engine.Register(v.id, v.series.start_date()).ok());
      if (v.warm > 0) {
        ASSERT_TRUE(engine.LoadHistory(v.id, v.series.Slice(0, v.warm)).ok());
      }
      ingested[v.id] = v.warm;
    }
    ASSERT_TRUE(engine.RefreshForecasts().ok());

    Rng schedule(4400 + static_cast<uint64_t>(threads));
    const std::string label = "binned threads=" + std::to_string(threads);
    for (int step = 0; step < 12; ++step) {
      for (const VehicleSpec& v : fleet) {
        size_t& next = ingested[v.id];
        if (next >= v.series.size()) continue;
        if (!schedule.Bernoulli(0.75)) continue;
        const Date day =
            v.series.start_date().AddDays(static_cast<int64_t>(next));
        ASSERT_TRUE(engine.Append(v.id, day, v.series[next]).ok())
            << label << " " << v.id;
        ++next;
      }
      if (schedule.Bernoulli(0.4)) {
        ASSERT_TRUE(engine.RefreshForecasts().ok()) << label;
      }
    }
    ASSERT_TRUE(engine.RefreshForecasts().ok()) << label;

    const core::FleetScheduler batch_binned = BatchScheduler(
        fleet, ingested, TreeOptions(threads, ml::TreeCore::kBinned));
    ExpectForecastsIdentical(engine.Snapshot()->forecasts,
                             batch_binned.FleetForecast().ValueOrDie(), label);
    const std::string binned_bytes =
        CheckpointBytes(batch_binned, "serve_batch_binned.txt");
    EXPECT_EQ(CheckpointBytes(engine.scheduler(), "serve_inc_binned.txt"),
              binned_bytes)
        << label;
    // Cross-core pin at fleet level: retraining the identical fleet on the
    // row-oriented core (single-threaded) reproduces the same checkpoint.
    const core::FleetScheduler batch_row = BatchScheduler(
        fleet, ingested, TreeOptions(1, ml::TreeCore::kRowOriented));
    EXPECT_EQ(binned_bytes, CheckpointBytes(batch_row, "serve_batch_row.txt"))
        << label;
  }
}

/// Bin mappers are built once per vehicle and cached; appending usage must
/// invalidate exactly that vehicle's cache, and a series replacement must
/// also drop the unified-corpus cache.
TEST(ServingEngineTest, BinningCacheInvalidationFollowsIngest) {
  ServingEngine engine(TreeOptions(1, ml::TreeCore::kBinned));
  const data::DailySeries s1 = SimulatedVehicle(201, 600);
  const data::DailySeries s2 = SimulatedVehicle(202, 600);
  ASSERT_TRUE(engine.Register("v1", s1.start_date()).ok());
  ASSERT_TRUE(engine.Register("v2", s2.start_date()).ok());
  ASSERT_TRUE(engine.LoadHistory("v1", s1.Slice(0, 599)).ok());
  ASSERT_TRUE(engine.LoadHistory("v2", s2).ok());
  // Before any training there is nothing cached.
  EXPECT_EQ(engine.scheduler().VehicleBinningCache("v1"), nullptr);
  ASSERT_TRUE(engine.RefreshForecasts().ok());

  const auto v1_cache = engine.scheduler().VehicleBinningCache("v1");
  ASSERT_NE(v1_cache, nullptr);
  EXPECT_GT(v1_cache->stats().lookups, 0u);
  EXPECT_GT(v1_cache->stats().entries, 0u);
  // Both old vehicles contribute first cycles, so the unified XGB model
  // trained through the shared corpus cache.
  const auto unified = engine.scheduler().UnifiedBinningCache();
  ASSERT_NE(unified, nullptr);
  EXPECT_GT(unified->stats().lookups, 0u);

  // An append dirties exactly the appended vehicle's mapper cache.
  ASSERT_TRUE(engine.Append("v1", s1.start_date().AddDays(599), s1[599]).ok());
  EXPECT_EQ(engine.scheduler().VehicleBinningCache("v1"), nullptr);
  EXPECT_NE(engine.scheduler().VehicleBinningCache("v2"), nullptr);
  // Retraining recreates and repopulates it.
  ASSERT_TRUE(engine.RefreshForecasts().ok());
  const auto rebuilt = engine.scheduler().VehicleBinningCache("v1");
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_GT(rebuilt->stats().entries, 0u);

  // Wholesale series replacement invalidates the corpus-level cache too:
  // the first cycle itself may have changed.
  core::FleetScheduler batch(TreeOptions(1, ml::TreeCore::kBinned));
  ASSERT_TRUE(batch.RegisterVehicle("v1", s1.start_date()).ok());
  ASSERT_TRUE(batch.IngestSeries("v1", s1).ok());
  ASSERT_TRUE(batch.TrainAll().ok());
  ASSERT_NE(batch.UnifiedBinningCache(), nullptr);
  EXPECT_GT(batch.UnifiedBinningCache()->stats().entries, 0u);
  ASSERT_TRUE(batch.IngestSeries("v1", s1).ok());
  EXPECT_EQ(batch.VehicleBinningCache("v1"), nullptr);
  EXPECT_EQ(batch.UnifiedBinningCache()->stats().entries, 0u);
}

TEST(ServingEngineTest, CachedStateMatchesBatchDerivation) {
  const data::DailySeries series = SimulatedVehicle(7, 600);
  ServingEngine engine(FastOptions());
  ASSERT_TRUE(engine.Register("v1", series.start_date()).ok());
  ASSERT_TRUE(engine.LoadHistory("v1", series.Slice(0, 550)).ok());
  for (size_t i = 550; i < series.size(); ++i) {
    ASSERT_TRUE(engine
                    .Append("v1",
                            series.start_date().AddDays(
                                static_cast<int64_t>(i)),
                            series[i])
                    .ok());
  }
  ASSERT_TRUE(engine.RefreshForecasts().ok());

  core::FleetScheduler batch(FastOptions());
  ASSERT_TRUE(batch.RegisterVehicle("v1", series.start_date()).ok());
  ASSERT_TRUE(batch.IngestSeries("v1", series).ok());
  ASSERT_TRUE(batch.TrainAll().ok());
  const core::MaintenanceForecast want = batch.Forecast("v1").ValueOrDie();

  // The O(1) cached mirror reproduces the full DeriveSeries walk bit for
  // bit: L_v(today) is the forecast's usage_seconds_left.
  const VehicleServeState state = engine.CachedState("v1").ValueOrDie();
  EXPECT_EQ(state.days_observed, series.size());
  EXPECT_EQ(state.usage_seconds_left, want.usage_seconds_left);
  EXPECT_TRUE(state.has_forecast);
  EXPECT_FALSE(state.dirty);
  EXPECT_GE(state.completed_cycles, 1u);
  double total = 0.0;
  for (size_t i = 0; i < series.size(); ++i) total += series[i];
  EXPECT_EQ(state.total_usage_s, total);
}

TEST(ServingEngineTest, DirtyTrackingRefreshesOnlyChangedVehicles) {
  ServingEngine engine(FastOptions());
  for (int v = 1; v <= 3; ++v) {
    const std::string id = std::string("v") + std::to_string(v);
    const data::DailySeries series = SimulatedVehicle(40 + v, 600);
    ASSERT_TRUE(engine.Register(id, series.start_date()).ok());
    ASSERT_TRUE(engine.LoadHistory(id, series).ok());
  }
  EXPECT_EQ(engine.DirtyCount(), 3u);
  const RefreshStats first = engine.RefreshForecasts().ValueOrDie();
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_EQ(first.refreshed, 3u);
  EXPECT_EQ(first.reused, 0u);
  EXPECT_TRUE(first.corpus_rebuilt);
  EXPECT_EQ(engine.DirtyCount(), 0u);

  // One appended day to one old vehicle dirties exactly that vehicle; its
  // corpus contribution is append-invariant, so nobody else retrains.
  ASSERT_TRUE(engine.Append("v2", Day(600), 9'000.0).ok());
  EXPECT_EQ(engine.DirtyCount(), 1u);
  const RefreshStats second = engine.RefreshForecasts().ValueOrDie();
  EXPECT_EQ(second.epoch, 2u);
  EXPECT_EQ(second.refreshed, 1u);
  EXPECT_EQ(second.reused, 2u);
  EXPECT_FALSE(second.corpus_rebuilt);
  EXPECT_EQ(engine.LastRefreshStats().epoch, 2u);

  // A clean fleet refresh is a no-op that still publishes a new epoch.
  const RefreshStats third = engine.RefreshForecasts().ValueOrDie();
  EXPECT_EQ(third.refreshed, 0u);
  EXPECT_EQ(third.reused, 3u);
}

TEST(ServingEngineTest, SnapshotsAreImmutableAndEpoched) {
  ServingEngine engine(FastOptions());
  const data::DailySeries series = SimulatedVehicle(55, 600);
  ASSERT_TRUE(engine.Register("v1", series.start_date()).ok());
  ASSERT_TRUE(engine.LoadHistory("v1", series.Slice(0, 599)).ok());

  const std::shared_ptr<const FleetSnapshot> empty = engine.Snapshot();
  EXPECT_EQ(empty->epoch, 0u);
  EXPECT_TRUE(empty->forecasts.empty());

  ASSERT_TRUE(engine.RefreshForecasts().ok());
  const std::shared_ptr<const FleetSnapshot> one = engine.Snapshot();
  ASSERT_EQ(one->forecasts.size(), 1u);
  const double days_left_at_one = one->forecasts[0].days_left;

  ASSERT_TRUE(engine.Append("v1", Day(599), series[599]).ok());
  ASSERT_TRUE(engine.RefreshForecasts().ok());
  const std::shared_ptr<const FleetSnapshot> two = engine.Snapshot();
  EXPECT_EQ(two->epoch, 2u);
  EXPECT_EQ(engine.epoch(), 2u);

  // The older snapshot is untouched by the later refresh: a reader holding
  // it keeps a consistent view.
  EXPECT_EQ(empty->epoch, 0u);
  EXPECT_TRUE(empty->forecasts.empty());
  EXPECT_EQ(one->epoch, 1u);
  EXPECT_EQ(one->forecasts[0].days_left, days_left_at_one);
}

TEST(ServingEngineTest, ErrorContract) {
  ServingEngine engine(FastOptions());
  // Refresh on an empty fleet mirrors FleetForecast's contract.
  EXPECT_EQ(engine.RefreshForecasts().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.Append("ghost", Day(0), 1.0).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.CachedState("ghost").status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(engine.Register("v1", Day(0)).ok());
  EXPECT_EQ(engine.Register("v1", Day(0)).code(),
            StatusCode::kAlreadyExists);
  // Failed appends leave the cached state untouched.
  EXPECT_TRUE(engine.Append("v1", Day(0), 1'000.0).ok());
  EXPECT_FALSE(engine.Append("v1", Day(5), 1'000.0).ok());  // gap
  EXPECT_FALSE(engine.Append("v1", Day(1), -3.0).ok());     // bad value
  const VehicleServeState state = engine.CachedState("v1").ValueOrDie();
  EXPECT_EQ(state.days_observed, 1u);
  EXPECT_EQ(state.total_usage_s, 1'000.0);
}

TEST(ServingEngineTest, GetForecastsBatchReadsFromOneSnapshot) {
  ServingEngine engine(FastOptions());
  const data::DailySeries series = SimulatedVehicle(31, 600);
  ASSERT_TRUE(engine.Register("v1", series.start_date()).ok());
  ASSERT_TRUE(engine.LoadHistory("v1", series).ok());
  // Registered but data-free: lands in the snapshot with no forecast.
  ASSERT_TRUE(engine.Register("empty", Day(0)).ok());
  ASSERT_TRUE(engine.RefreshForecasts().ok());
  // Registered after the refresh: not in the published snapshot at all.
  ASSERT_TRUE(engine.Register("late", Day(0)).ok());

  const std::vector<std::string> ids = {"v1", "ghost", "empty", "late"};
  const std::vector<Result<core::MaintenanceForecast>> results =
      engine.GetForecasts(ids);
  ASSERT_EQ(results.size(), 4u);

  // Request order is preserved; every entry comes from the same epoch-1
  // snapshot.
  ASSERT_TRUE(results[0].ok()) << results[0].status();
  EXPECT_EQ(results[0].ValueOrDie().vehicle_id, "v1");
  EXPECT_EQ(results[0].ValueOrDie().days_left,
            engine.Snapshot()->forecasts[0].days_left);
  EXPECT_EQ(results[1].status().code(), StatusCode::kNotFound);
  EXPECT_EQ(results[2].status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(results[3].status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Warm-start refreshes (docs/warm-start.md)

/// Options that make every old vehicle warm-capable: the selection can only
/// pick RF, and cold starts use the XGB unified model.
core::SchedulerOptions WarmOptions(int num_threads = 1) {
  core::SchedulerOptions options = FastOptions(num_threads);
  options.algorithms = {"RF"};
  options.unified_algorithm = "XGB";
  options.cold_start.model_params = {{"num_estimators", 6},
                                     {"num_iterations", 8},
                                     {"max_depth", 4},
                                     {"max_bins", 64},
                                     {"min_samples_leaf", 2}};
  options.warm_start = true;
  options.warm_start_rounds = 4;
  return options;
}

TEST(ServingEngineWarmStartTest, AppendOnlyRefreshResumesEligibleVehicles) {
  ServingEngine engine(WarmOptions());
  const data::DailySeries series = SimulatedVehicle(301, 600);
  ASSERT_TRUE(engine.Register("v1", series.start_date()).ok());
  ASSERT_TRUE(engine.LoadHistory("v1", series.Slice(0, 590)).ok());
  // First refresh is necessarily cold: no cached model existed before it.
  const RefreshStats first = engine.RefreshForecasts().ValueOrDie();
  EXPECT_EQ(first.warm_started, 0u);
  ASSERT_EQ(engine.Snapshot()->forecasts.size(), 1u);
  ASSERT_EQ(engine.Snapshot()->forecasts[0].model_name, "RF");
  // The resumed ensemble is observable through the checkpoint bytes
  // growing; tree-count introspection is not part of the serve API.
  const size_t checkpoint_before =
      CheckpointBytes(engine.scheduler(), "warm_before.txt").size();

  // Append-only growth: the cached RF is eligible and must be resumed, not
  // retrained.
  for (int day = 590; day < 594; ++day) {
    ASSERT_TRUE(engine
                    .Append("v1", series.start_date().AddDays(day),
                            series[static_cast<size_t>(day)])
                    .ok());
  }
  const RefreshStats warm = engine.RefreshForecasts().ValueOrDie();
  EXPECT_EQ(warm.refreshed, 1u);
  EXPECT_EQ(warm.warm_started, 1u);
  // The vehicle keeps a live forecast and its resumed model grew.
  ASSERT_EQ(engine.Snapshot()->forecasts.size(), 1u);
  EXPECT_EQ(engine.Snapshot()->forecasts[0].model_name, "RF");
  EXPECT_GT(CheckpointBytes(engine.scheduler(), "warm_after.txt").size(),
            checkpoint_before);
}

TEST(ServingEngineWarmStartTest, LoadHistoryClearsWarmEligibility) {
  ServingEngine engine(WarmOptions());
  const data::DailySeries series = SimulatedVehicle(302, 600);
  ASSERT_TRUE(engine.Register("v1", series.start_date()).ok());
  ASSERT_TRUE(engine.LoadHistory("v1", series.Slice(0, 590)).ok());
  ASSERT_TRUE(engine.RefreshForecasts().ok());
  // A series replacement may rewrite history, so the cached model can no
  // longer be resumed: the next refresh must fall back to a cold retrain.
  ASSERT_TRUE(engine.LoadHistory("v1", series.Slice(0, 595)).ok());
  const RefreshStats stats = engine.RefreshForecasts().ValueOrDie();
  EXPECT_EQ(stats.refreshed, 1u);
  EXPECT_EQ(stats.warm_started, 0u);
  EXPECT_EQ(engine.Snapshot()->forecasts.size(), 1u);
}

TEST(ServingEngineWarmStartTest, DisabledFlagNeverWarmStarts) {
  core::SchedulerOptions options = WarmOptions();
  options.warm_start = false;
  ServingEngine engine(options);
  const data::DailySeries series = SimulatedVehicle(303, 600);
  ASSERT_TRUE(engine.Register("v1", series.start_date()).ok());
  ASSERT_TRUE(engine.LoadHistory("v1", series.Slice(0, 595)).ok());
  ASSERT_TRUE(engine.RefreshForecasts().ok());
  ASSERT_TRUE(
      engine.Append("v1", series.start_date().AddDays(595), series[595]).ok());
  const RefreshStats stats = engine.RefreshForecasts().ValueOrDie();
  EXPECT_EQ(stats.refreshed, 1u);
  EXPECT_EQ(stats.warm_started, 0u);
}

/// The serve.refresh.warm failpoint contract: a failed warm resume must
/// degrade to the cold retrain — the vehicle keeps a forecast and the
/// refresh succeeds — never to a dropped vehicle or a failed refresh.
TEST(ServingEngineWarmStartTest, WarmFailureDegradesToColdRetrain) {
  if (!failpoints::CompiledIn()) {
    GTEST_SKIP() << "failpoints not compiled in";
  }
  failpoints::DisarmAll();
  ServingEngine engine(WarmOptions());
  const data::DailySeries series = SimulatedVehicle(304, 600);
  ASSERT_TRUE(engine.Register("v1", series.start_date()).ok());
  ASSERT_TRUE(engine.LoadHistory("v1", series.Slice(0, 595)).ok());
  ASSERT_TRUE(engine.RefreshForecasts().ok());
  ASSERT_TRUE(
      engine.Append("v1", series.start_date().AddDays(595), series[595]).ok());

  ASSERT_TRUE(failpoints::Arm("serve.refresh.warm").ok());
  const Result<RefreshStats> stats = engine.RefreshForecasts();
  failpoints::DisarmAll();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats.ValueOrDie().refreshed, 1u);
  EXPECT_EQ(stats.ValueOrDie().warm_started, 0u);
  ASSERT_EQ(engine.Snapshot()->forecasts.size(), 1u);
  EXPECT_EQ(engine.Snapshot()->forecasts[0].model_name, "RF");
}

}  // namespace
}  // namespace serve
}  // namespace nextmaint
