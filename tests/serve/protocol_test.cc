#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/date.h"
#include "common/rng.h"
#include "common/status.h"

/// Wire-protocol framing tests: every message type round-trips bit-exactly,
/// and every malformed input — truncation at any byte, trailing garbage,
/// bad magic/version/type, oversized declared lengths, fuzzed payloads —
/// decodes to InvalidArgument without crashing (protocol.h error contract).

namespace nextmaint {
namespace serve {
namespace protocol {
namespace {

Date Day(int64_t n) { return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(n); }

/// The payload of an encoded frame (everything after the length prefix).
std::vector<uint8_t> PayloadOf(const std::vector<uint8_t>& frame) {
  EXPECT_GE(frame.size(), kLengthPrefixBytes);
  return std::vector<uint8_t>(frame.begin() + kLengthPrefixBytes,
                              frame.end());
}

/// One representative of every request type, with every field exercised.
std::vector<Request> SampleRequests() {
  std::vector<Request> requests;
  AppendRequest append;
  append.vehicle_id = "v42";
  append.day = Day(123);
  append.seconds = 12345.625;
  requests.emplace_back(append);

  LoadHistoryRequest load;
  load.vehicle_id = "fleet/7";
  load.start_day = Day(0);
  load.values = {0.0, 3600.5, -1.25, 86400.0};
  requests.emplace_back(load);

  requests.emplace_back(RefreshRequest{});

  GetForecastRequest read;
  read.vehicle_ids = {"a", "b", "", "vehicle-with-a-longer-id"};
  requests.emplace_back(read);

  requests.emplace_back(StatsRequest{});
  requests.emplace_back(ShutdownRequest{});
  return requests;
}

/// One representative of every response type.
std::vector<Response> SampleResponses() {
  std::vector<Response> responses;
  responses.emplace_back(AckResponse{});

  ErrorResponse error;
  error.code = StatusCode::kNotFound;
  error.message = "vehicle 'x' is not in the published snapshot";
  responses.emplace_back(error);

  OverloadedResponse busy;
  busy.shard = 3;
  busy.queue_depth = 1024;
  busy.max_queue = 1024;
  responses.emplace_back(busy);

  RefreshDoneResponse done;
  done.epoch = 17;
  done.refreshed = 120;
  done.reused = 7;
  done.shards = 4;
  responses.emplace_back(done);

  ForecastBatchResponse batch;
  ForecastEntry ok_entry;
  ok_entry.vehicle_id = "v1";
  ok_entry.status_code = StatusCode::kOk;
  ok_entry.model_name = "RF_multi";
  ok_entry.days_left = 12.75;
  ok_entry.predicted_date = Day(900);
  ok_entry.usage_seconds_left = 123456.5;
  ok_entry.epoch = 9;
  batch.entries.push_back(ok_entry);
  ForecastEntry sad_entry;
  sad_entry.vehicle_id = "v2";
  sad_entry.status_code = StatusCode::kFailedPrecondition;
  sad_entry.status_message = "no published forecast";
  batch.entries.push_back(sad_entry);
  responses.emplace_back(batch);

  StatsResponse stats;
  stats.frames = 1000;
  stats.decode_errors = 3;
  stats.appends = 500;
  stats.load_history = 20;
  stats.reads = 400;
  stats.overloaded = 5;
  ShardStats shard;
  shard.shard = 1;
  shard.vehicles = 250;
  shard.epoch = 12;
  shard.queue_depth = 17;
  shard.dirty = 4;
  shard.appends = 260;
  shard.overloaded = 2;
  stats.shards = {ShardStats{}, shard};
  responses.emplace_back(stats);
  return responses;
}

bool SameRequest(const Request& a, const Request& b) {
  const std::vector<uint8_t> ea = EncodeRequest(a);
  const std::vector<uint8_t> eb = EncodeRequest(b);
  return ea == eb;
}

bool SameResponse(const Response& a, const Response& b) {
  const std::vector<uint8_t> ea = EncodeResponse(a);
  const std::vector<uint8_t> eb = EncodeResponse(b);
  return ea == eb;
}

TEST(ProtocolRoundTripTest, EveryRequestTypeRoundTrips) {
  for (const Request& request : SampleRequests()) {
    SCOPED_TRACE(static_cast<int>(TypeOf(request)));
    const std::vector<uint8_t> frame = EncodeRequest(request);
    // Frame layout: length prefix, then magic/version/type header.
    ASSERT_GE(frame.size(), kLengthPrefixBytes + 4);
    EXPECT_EQ(frame[kLengthPrefixBytes], kMagic0);
    EXPECT_EQ(frame[kLengthPrefixBytes + 1], kMagic1);
    EXPECT_EQ(frame[kLengthPrefixBytes + 2], kProtocolVersion);
    EXPECT_EQ(frame[kLengthPrefixBytes + 3],
              static_cast<uint8_t>(TypeOf(request)));

    const Result<Request> decoded = DecodeRequest(PayloadOf(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    // Bit-exact round trip: re-encoding reproduces the same bytes.
    EXPECT_TRUE(SameRequest(request, decoded.ValueOrDie()));
  }
}

TEST(ProtocolRoundTripTest, EveryResponseTypeRoundTrips) {
  for (const Response& response : SampleResponses()) {
    SCOPED_TRACE(static_cast<int>(TypeOf(response)));
    const std::vector<uint8_t> frame = EncodeResponse(response);
    const Result<Response> decoded = DecodeResponse(PayloadOf(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(SameResponse(response, decoded.ValueOrDie()));
  }
}

TEST(ProtocolRoundTripTest, DoublesTravelBitExactly) {
  AppendRequest append;
  append.vehicle_id = "v";
  append.day = Day(1);
  // A value with no short decimal representation.
  append.seconds = 0.1 + 0.2;
  const Result<Request> decoded =
      DecodeRequest(PayloadOf(EncodeRequest(append)));
  ASSERT_TRUE(decoded.ok());
  const auto& round = std::get<AppendRequest>(decoded.ValueOrDie());
  EXPECT_EQ(std::bit_cast<uint64_t>(round.seconds),
            std::bit_cast<uint64_t>(append.seconds));
}

TEST(ProtocolRoundTripTest, ErrorResponseRoundTripsStatus) {
  const Status original =
      Status::DataError("csv row 17: unparsable utilization");
  const ErrorResponse encoded = ErrorResponse::FromStatus(original);
  const Result<Response> decoded =
      DecodeResponse(PayloadOf(EncodeResponse(encoded)));
  ASSERT_TRUE(decoded.ok());
  const Status round =
      std::get<ErrorResponse>(decoded.ValueOrDie()).ToStatus();
  EXPECT_EQ(round.code(), original.code());
  EXPECT_EQ(round.message(), original.message());
}

TEST(ProtocolErrorTest, EveryStrictPrefixIsInvalidArgument) {
  for (const Request& request : SampleRequests()) {
    const std::vector<uint8_t> payload = PayloadOf(EncodeRequest(request));
    for (size_t len = 0; len < payload.size(); ++len) {
      const Result<Request> decoded = DecodeRequest(
          std::span<const uint8_t>(payload.data(), len));
      ASSERT_FALSE(decoded.ok())
          << "type " << static_cast<int>(TypeOf(request)) << " prefix len "
          << len << " decoded successfully";
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    }
  }
  for (const Response& response : SampleResponses()) {
    const std::vector<uint8_t> payload = PayloadOf(EncodeResponse(response));
    for (size_t len = 0; len < payload.size(); ++len) {
      const Result<Response> decoded = DecodeResponse(
          std::span<const uint8_t>(payload.data(), len));
      ASSERT_FALSE(decoded.ok())
          << "type " << static_cast<int>(TypeOf(response)) << " prefix len "
          << len << " decoded successfully";
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(ProtocolErrorTest, TrailingBytesAreInvalidArgument) {
  for (const Request& request : SampleRequests()) {
    std::vector<uint8_t> payload = PayloadOf(EncodeRequest(request));
    payload.push_back(0x00);
    const Result<Request> decoded = DecodeRequest(payload);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ProtocolErrorTest, BadMagicVersionAndTypeAreRejected) {
  const std::vector<uint8_t> good = PayloadOf(EncodeRequest(RefreshRequest{}));

  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(DecodeRequest(bad_magic).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<uint8_t> bad_version = good;
  bad_version[2] = kProtocolVersion + 1;
  EXPECT_EQ(DecodeRequest(bad_version).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<uint8_t> bad_type = good;
  bad_type[3] = 0;
  EXPECT_EQ(DecodeRequest(bad_type).status().code(),
            StatusCode::kInvalidArgument);

  // A response frame fed to the request decoder (and vice versa) fails:
  // the two live in disjoint type ranges.
  const std::vector<uint8_t> ack = PayloadOf(EncodeResponse(AckResponse{}));
  EXPECT_EQ(DecodeRequest(ack).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeResponse(good).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolErrorTest, GiantDeclaredCountsDoNotAllocate) {
  // A LoadHistory declaring 2^32-1 values in a tiny payload must fail on
  // the count check, not attempt a 32 GiB reserve.
  std::vector<uint8_t> payload = {kMagic0, kMagic1, kProtocolVersion,
                                  static_cast<uint8_t>(
                                      MessageType::kLoadHistory)};
  payload.push_back(1);  // vehicle id "v" (u16 len LE).
  payload.push_back(0);
  payload.push_back('v');
  for (int i = 0; i < 8; ++i) payload.push_back(0);  // start day = 0.
  for (int i = 0; i < 4; ++i) payload.push_back(0xFF);  // count u32 max.
  const Result<Request> decoded = DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolErrorTest, OversizedVehicleIdIsRejected) {
  GetForecastRequest read;
  read.vehicle_ids = {std::string(kMaxVehicleIdBytes + 1, 'x')};
  const Result<Request> decoded =
      DecodeRequest(PayloadOf(EncodeRequest(read)));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolErrorTest, FuzzedPayloadsNeverCrash) {
  Rng rng(20260808);
  const std::vector<uint8_t> seed_payload =
      PayloadOf(EncodeRequest(SampleRequests()[1]));
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> payload;
    if (trial % 2 == 0) {
      // Pure garbage of random length.
      const size_t len = rng.UniformInt(0, 64);
      payload.reserve(len);
      for (size_t i = 0; i < len; ++i) {
        payload.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
      }
    } else {
      // A valid payload with a few corrupted bytes — the adversarial case
      // that tends to find over-reads.
      payload = seed_payload;
      const int flips = static_cast<int>(rng.UniformInt(1, 4));
      for (int f = 0; f < flips; ++f) {
        const size_t pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(payload.size()) - 1));
        payload[pos] = static_cast<uint8_t>(rng.UniformInt(0, 255));
      }
    }
    const Result<Request> request = DecodeRequest(payload);
    if (!request.ok()) {
      EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
    }
    const Result<Response> response = DecodeResponse(payload);
    if (!response.ok()) {
      EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(FrameAssemblerTest, ReassemblesAcrossArbitrarySplits) {
  const std::vector<uint8_t> frame1 = EncodeRequest(SampleRequests()[0]);
  const std::vector<uint8_t> frame2 = EncodeRequest(SampleRequests()[1]);
  std::vector<uint8_t> stream = frame1;
  stream.insert(stream.end(), frame2.begin(), frame2.end());

  // Every split point of the concatenated stream yields the same two
  // payloads.
  for (size_t split = 0; split <= stream.size(); ++split) {
    FrameAssembler assembler;
    assembler.Feed(std::span<const uint8_t>(stream.data(), split));
    std::vector<std::vector<uint8_t>> payloads;
    const auto drain = [&]() {
      for (;;) {
        Result<std::optional<std::vector<uint8_t>>> next = assembler.Next();
        ASSERT_TRUE(next.ok()) << next.status();
        if (!next.ValueOrDie().has_value()) break;
        payloads.push_back(*std::move(next).ValueOrDie());
      }
    };
    drain();
    assembler.Feed(std::span<const uint8_t>(stream.data() + split,
                                            stream.size() - split));
    drain();
    ASSERT_EQ(payloads.size(), 2u) << "split " << split;
    EXPECT_EQ(payloads[0], PayloadOf(frame1));
    EXPECT_EQ(payloads[1], PayloadOf(frame2));
    EXPECT_EQ(assembler.buffered_bytes(), 0u);
  }
}

TEST(FrameAssemblerTest, ManyFramesInOneFeed) {
  const std::vector<Request> requests = SampleRequests();
  std::vector<uint8_t> stream;
  for (const Request& request : requests) {
    const std::vector<uint8_t> frame = EncodeRequest(request);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  FrameAssembler assembler;
  assembler.Feed(stream);
  for (const Request& request : requests) {
    Result<std::optional<std::vector<uint8_t>>> next = assembler.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next.ValueOrDie().has_value());
    const Result<Request> decoded = DecodeRequest(*next.ValueOrDie());
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(SameRequest(request, decoded.ValueOrDie()));
  }
  Result<std::optional<std::vector<uint8_t>>> next = assembler.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next.ValueOrDie().has_value());
}

TEST(FrameAssemblerTest, OversizedLengthPrefixPoisonsTheStream) {
  FrameAssembler assembler;
  const uint32_t huge = static_cast<uint32_t>(kMaxPayloadBytes) + 1;
  const std::vector<uint8_t> prefix = {
      static_cast<uint8_t>(huge & 0xFF),
      static_cast<uint8_t>((huge >> 8) & 0xFF),
      static_cast<uint8_t>((huge >> 16) & 0xFF),
      static_cast<uint8_t>((huge >> 24) & 0xFF)};
  assembler.Feed(prefix);
  EXPECT_EQ(assembler.Next().status().code(), StatusCode::kInvalidArgument);
  // Poisoned for good: even a valid frame afterwards is not parsed, the
  // byte alignment is unrecoverable.
  assembler.Feed(EncodeRequest(RefreshRequest{}));
  EXPECT_EQ(assembler.Next().status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameAssemblerTest, UndersizedLengthPrefixPoisonsTheStream) {
  FrameAssembler assembler;
  // Declares a 2-byte payload — shorter than the 4-byte frame header.
  assembler.Feed(std::vector<uint8_t>{2, 0, 0, 0, kMagic0, kMagic1});
  EXPECT_EQ(assembler.Next().status().code(), StatusCode::kInvalidArgument);
}

TEST(StableVehicleHashTest, MatchesPinnedValues) {
  // FNV-1a 64 test vectors; these pin the sharding function forever —
  // changing it would silently re-shard every deployed fleet.
  EXPECT_EQ(StableVehicleHash(""), 14695981039346656037ULL);
  EXPECT_EQ(StableVehicleHash("a"), 12638187200555641996ULL);
  EXPECT_EQ(StableVehicleHash("v1"), 634738200219259176ULL);
  EXPECT_NE(StableVehicleHash("v1"), StableVehicleHash("v2"));
}

}  // namespace
}  // namespace protocol
}  // namespace serve
}  // namespace nextmaint
