#include <gtest/gtest.h>

#include <filesystem>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cli/cli.h"
#include "common/date.h"
#include "common/failpoints.h"
#include "common/strings.h"
#include "serve/daemon.h"
#include "serve/protocol.h"

/// Chaos sweep: arm every catalogued failpoint in turn against a small
/// simulated fleet and drive the full CLI pipeline. The contract
/// (docs/fault-injection.md): whatever fails, the run ends in a clean
/// Status or a documented BL fallback — never a crash, hang or NaN in the
/// output — and the outcome is bit-identical at 1 and 4 threads.

namespace nextmaint {
namespace {

namespace fs = std::filesystem;

/// Renders a daemon protocol response with only deterministic fields, so
/// two runs at different thread counts can be compared byte for byte.
void RenderResponse(const serve::protocol::Response& response,
                    std::ostream& out) {
  using namespace serve::protocol;  // NOLINT
  if (std::get_if<AckResponse>(&response) != nullptr) {
    out << "ack\n";
  } else if (const auto* error = std::get_if<ErrorResponse>(&response)) {
    out << "error " << static_cast<int>(error->code) << ": "
        << error->message << "\n";
  } else if (const auto* busy = std::get_if<OverloadedResponse>(&response)) {
    out << "overloaded shard=" << busy->shard << "\n";
  } else if (const auto* done =
                 std::get_if<RefreshDoneResponse>(&response)) {
    out << "refresh epoch=" << done->epoch << " refreshed=" << done->refreshed
        << " reused=" << done->reused << " shards=" << done->shards << "\n";
  } else if (const auto* batch =
                 std::get_if<ForecastBatchResponse>(&response)) {
    for (const ForecastEntry& entry : batch->entries) {
      if (entry.status_code != StatusCode::kOk) {
        out << "forecast " << entry.vehicle_id << " error "
            << static_cast<int>(entry.status_code) << ": "
            << entry.status_message << "\n";
        continue;
      }
      out << "forecast " << entry.vehicle_id << " model="
          << entry.model_name
          << StrFormat(" days_left=%.3f", entry.days_left) << " due="
          << entry.predicted_date.ToString() << " epoch=" << entry.epoch
          << "\n";
    }
  } else {
    out << "stats\n";
  }
}

class ChaosSweepTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!failpoints::CompiledIn()) {
      GTEST_SKIP() << "failpoints compiled out "
                      "(NEXTMAINT_ENABLE_FAILPOINTS=OFF)";
    }
    failpoints::DisarmAll();
    // Unique per test: ctest -j runs suite members as concurrent processes
    // and a shared directory would race SetUp's remove_all.
    dir_ = fs::path(testing::TempDir()) /
           (std::string("nextmaint_chaos_test_") +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    std::ostringstream out;
    ASSERT_TRUE(cli::RunCommand({"simulate", "--out", Dir(), "--vehicles",
                                 "3", "--days", "600", "--tv", "500000"},
                                out)
                    .ok());
    // A healthy model file for the --load-models leg of the sweep.
    models_path_ = (dir_ / "models.txt").string();
    std::ostringstream save_out;
    ASSERT_TRUE(RunPipeline(1, {"--save-models", models_path_}, &save_out)
                    .ok());
  }
  void TearDown() override {
    if (failpoints::CompiledIn()) failpoints::DisarmAll();
    fs::remove_all(dir_);
  }

  std::string Dir() const { return dir_.string(); }

  /// One full forecast run over the simulated fleet.
  Status RunPipeline(int threads, const std::vector<std::string>& extra,
                     std::ostringstream* out) const {
    std::vector<std::string> args = {
        "forecast",  "--data",   Dir(),           "--tv", "500000",
        "--window",  "3",        "--threads",     std::to_string(threads)};
    args.insert(args.end(), extra.begin(), extra.end());
    return cli::RunCommand(args, *out);
  }

  /// One incremental serve replay over the same fleet, for the serve.*
  /// failpoint sites the batch pipeline never reaches. Runs with
  /// --warm-start so the serve.refresh.warm site (which fires once per
  /// dirty vehicle, before the eligibility check) is reachable; an armed
  /// warm failure must degrade to the cold retrain, never drop a vehicle.
  Status RunServePipeline(int threads, std::ostringstream* out) const {
    return cli::RunCommand(
        {"serve", "--data", Dir(), "--tv", "500000", "--window", "3",
         "--replay-days", "20", "--refresh-every", "5", "--warm-start",
         "--threads", std::to_string(threads)},
        *out);
  }

  /// One scripted daemon run driven through HandleFrame (no sockets), for
  /// the serve.daemon.* sites: sharded warm-load and appends, a refresh
  /// barrier across two shards, then a batch read. Transport-level faults
  /// surface as rendered error responses, never as a failed harness run.
  Status RunDaemonPipeline(int threads, std::ostringstream* out) const {
    using namespace serve::protocol;  // NOLINT
    serve::DaemonOptions options;
    options.scheduler.maintenance_interval_s = 500000;
    options.scheduler.window = 3;
    options.scheduler.num_threads = threads;
    options.shards = 2;
    serve::FleetDaemon daemon(options);
    const Status started = daemon.Start();
    if (!started.ok()) return started;

    const auto run = [&](const Request& request) {
      const std::vector<uint8_t> frame = EncodeRequest(request);
      const std::vector<uint8_t> reply = daemon.HandleFrame(
          std::span<const uint8_t>(frame).subspan(kLengthPrefixBytes));
      const Result<Response> decoded = DecodeResponse(
          std::span<const uint8_t>(reply).subspan(kLengthPrefixBytes));
      if (!decoded.ok()) {
        *out << "undecodable reply: " << decoded.status().ToString() << "\n";
        return;
      }
      RenderResponse(decoded.ValueOrDie(), *out);
    };

    const Date start = Date::FromYmd(2015, 1, 1).ValueOrDie();
    for (int v = 1; v <= 3; ++v) {
      LoadHistoryRequest load;
      load.vehicle_id = "v" + std::to_string(v);
      load.start_day = start;
      for (int i = 0; i < 120; ++i) {
        load.values.push_back(3000.0 + 500.0 * ((i * 7 + v * 13) % 11));
      }
      run(load);
    }
    for (int day = 0; day < 3; ++day) {
      for (int v = 1; v <= 3; ++v) {
        AppendRequest append;
        append.vehicle_id = "v" + std::to_string(v);
        append.day = start.AddDays(120 + day);
        append.seconds = 4000.0 + 250.0 * ((day * 5 + v) % 7);
        run(append);
      }
    }
    run(RefreshRequest{});
    GetForecastRequest read;
    read.vehicle_ids = {"v1", "v2", "v3", "ghost"};
    run(read);
    daemon.Stop();
    return Status::OK();
  }

  fs::path dir_;
  std::string models_path_;
};

/// The pipeline output and final status of one armed run.
struct ChaosOutcome {
  Status status;
  std::string output;
};

TEST_F(ChaosSweepTest, EverySiteDegradesCleanlyAndDeterministically) {
  for (const std::string& site : failpoints::RegisteredSites()) {
    // `site` alone fires on every hit (total outage of that seam);
    // `site:1` fires on exactly the first vehicle/hit (partial outage, the
    // graceful-degradation case).
    for (const std::string& spec : {site, site + ":1"}) {
      SCOPED_TRACE(spec);
      const bool daemon_site = site.rfind("serve.daemon.", 0) == 0;
      const bool serve_site =
          !daemon_site && site.rfind("serve.", 0) == 0;
      std::vector<std::string> extra;
      if (site == "scheduler.load_models" ||
          site == "storage.checkpoint.open" ||
          site == "storage.checkpoint.map") {
        // Load-path sites: open and map fire when the segmented checkpoint
        // is mmapped. (open also guards the save path's temp file, but the
        // load leg covers it deterministically.)
        extra = {"--load-models", models_path_};
      } else {
        // Save-path sites, including storage.checkpoint.segment_write and
        // storage.checkpoint.commit inside CheckpointStore::SaveAll.
        extra = {"--save-models", (dir_ / "sweep_models.txt").string()};
      }

      uint64_t hits = 0;
      std::vector<ChaosOutcome> outcomes;
      for (int threads : {1, 4}) {
        // Re-arm per run so the uncontexted nth counter restarts: both
        // thread counts must see the very same injection schedule.
        failpoints::DisarmAll();
        ASSERT_TRUE(failpoints::Arm(spec).ok());
        std::ostringstream out;
        ChaosOutcome outcome;
        outcome.status = daemon_site ? RunDaemonPipeline(threads, &out)
                         : serve_site
                             ? RunServePipeline(threads, &out)
                             : RunPipeline(threads, extra, &out);
        outcome.output = out.str();
        hits += failpoints::HitCount(site);
        failpoints::DisarmAll();

        // Clean Status or documented fallback — and never a NaN/Inf
        // leaking into operator-facing output.
        if (!outcome.status.ok()) {
          EXPECT_FALSE(outcome.status.message().empty());
        }
        EXPECT_EQ(outcome.output.find("nan"), std::string::npos)
            << outcome.output;
        EXPECT_EQ(outcome.output.find("inf"), std::string::npos)
            << outcome.output;
        outcomes.push_back(std::move(outcome));
      }

      // The site must actually be wired into the exercised pipeline.
      EXPECT_GT(hits, 0u) << "failpoint '" << site
                          << "' was never evaluated by the sweep";

      // Bit-identical at 1 vs 4 threads: same status, same output bytes.
      ASSERT_EQ(outcomes.size(), 2u);
      EXPECT_EQ(outcomes[0].status.code(), outcomes[1].status.code());
      EXPECT_EQ(outcomes[0].status.message(), outcomes[1].status.message());
      EXPECT_EQ(outcomes[0].output, outcomes[1].output);
    }
  }
}

TEST_F(ChaosSweepTest, PartialTrainingOutageStillServesWholeFleet) {
  failpoints::DisarmAll();
  ASSERT_TRUE(failpoints::Arm("scheduler.train_vehicle:1").ok());
  std::ostringstream out;
  const Status status = RunPipeline(1, {}, &out);
  failpoints::DisarmAll();
  ASSERT_TRUE(status.ok()) << status;
  const std::string text = out.str();
  // The quarantined vehicle is reported and served by the BL fallback...
  EXPECT_NE(text.find("degraded vehicle v1"), std::string::npos) << text;
  EXPECT_NE(text.find("BL_fallback"), std::string::npos) << text;
  // ...and the healthy vehicles still appear in the forecast table.
  EXPECT_NE(text.find("v2"), std::string::npos) << text;
  EXPECT_NE(text.find("v3"), std::string::npos) << text;
}

TEST_F(ChaosSweepTest, StrictModeTurnsInjectionIntoFailFast) {
  failpoints::DisarmAll();
  ASSERT_TRUE(failpoints::Arm("scheduler.train_vehicle:1").ok());
  std::ostringstream out;
  const Status status = RunPipeline(1, {"--strict"}, &out);
  failpoints::DisarmAll();
  EXPECT_EQ(status.code(), StatusCode::kUnknown);
  EXPECT_NE(status.message().find("injected failure"), std::string::npos)
      << status;
}

TEST_F(ChaosSweepTest, SaveOutageLeavesNoTruncatedModelFile) {
  const std::string path = (dir_ / "atomic_models.txt").string();
  failpoints::DisarmAll();
  ASSERT_TRUE(failpoints::Arm("scheduler.save_models").ok());
  std::ostringstream out;
  const Status status = RunPipeline(1, {"--save-models", path}, &out);
  failpoints::DisarmAll();
  EXPECT_FALSE(status.ok());
  // Neither a truncated target nor a stray temp file survives the failure.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(ChaosSweepTest, UnknownFailpointSpecRejectedUpFront) {
  std::ostringstream out;
  const Status status =
      RunPipeline(1, {"--failpoints", "no.such.site"}, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("no.such.site"), std::string::npos);
}

TEST_F(ChaosSweepTest, FailpointsFlagArmsThePipeline) {
  std::ostringstream out;
  const Status status = RunPipeline(
      1, {"--failpoints", "scheduler.forecast_vehicle:1"}, &out);
  failpoints::DisarmAll();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(out.str().find("BL_fallback"), std::string::npos) << out.str();
}

}  // namespace
}  // namespace nextmaint
