#include "lint/source_scan.h"

#include <gtest/gtest.h>

#include <string>

namespace nextmaint {
namespace lint {
namespace {

TEST(ScrubTest, BlanksLineCommentsButKeepsLineStructure) {
  const std::string in = "int a;  // rand() here\nint b;\n";
  const ScrubbedSource out = Scrub(in);
  EXPECT_EQ(out.code.size(), in.size());
  EXPECT_EQ(out.code.find("rand"), std::string::npos);
  EXPECT_NE(out.code.find("int a;"), std::string::npos);
  EXPECT_NE(out.code.find("int b;"), std::string::npos);
  // Newlines survive so line numbers stay aligned.
  EXPECT_EQ(out.code[in.find('\n')], '\n');
}

TEST(ScrubTest, BlanksBlockCommentsAcrossLines) {
  const ScrubbedSource out = Scrub("a /* rand()\n time( */ b\n");
  EXPECT_EQ(out.code.find("rand"), std::string::npos);
  EXPECT_EQ(out.code.find("time"), std::string::npos);
  EXPECT_NE(out.code.find('a'), std::string::npos);
  EXPECT_NE(out.code.find('b'), std::string::npos);
}

TEST(ScrubTest, BlanksStringLiteralContents) {
  const ScrubbedSource out =
      Scrub("auto s = \"rand() and \\\" time(\";\nint x;\n");
  EXPECT_EQ(out.code.find("rand"), std::string::npos);
  EXPECT_EQ(out.code.find("time"), std::string::npos);
  EXPECT_NE(out.code.find("int x;"), std::string::npos);
}

TEST(ScrubTest, BlanksRawStringContents) {
  const ScrubbedSource out =
      Scrub("auto p = R\"(\\brand\\s*\\()\";\nint y;\n");
  EXPECT_EQ(out.code.find("rand"), std::string::npos);
  EXPECT_NE(out.code.find("int y;"), std::string::npos);
}

TEST(ScrubTest, BlanksCharLiteralButNotDigitSeparator) {
  const ScrubbedSource out = Scrub("char c = 'r'; double d = 2'000'000.0;\n");
  EXPECT_EQ(out.code.find("'r'"), std::string::npos);
  // The digit separator must not open a character literal and swallow the
  // rest of the line.
  EXPECT_NE(out.code.find("2'000'000.0"), std::string::npos);
}

TEST(ScrubTest, RecordsSuppressionsWithRuleNames) {
  const ScrubbedSource out = Scrub(
      "int* p = new int;  // nextmaint-lint: allow(naked-new)\n"
      "int q;\n"
      "int r;  // nextmaint-lint: allow(*)\n");
  EXPECT_TRUE(out.IsAllowed(1, "naked-new"));
  EXPECT_FALSE(out.IsAllowed(1, "banned-primitive"));
  EXPECT_FALSE(out.IsAllowed(2, "naked-new"));
  EXPECT_TRUE(out.IsAllowed(3, "naked-new"));
  EXPECT_TRUE(out.IsAllowed(3, "layering"));
}

TEST(ScrubTest, SuppressionListSupportsMultipleRules) {
  const ScrubbedSource out =
      Scrub("x;  // nextmaint-lint: allow(naked-new, unchecked-status)\n");
  EXPECT_TRUE(out.IsAllowed(1, "naked-new"));
  EXPECT_TRUE(out.IsAllowed(1, "unchecked-status"));
  EXPECT_FALSE(out.IsAllowed(1, "layering"));
}

TEST(ScrubTest, LineOfMapsOffsetsToOneBasedLines) {
  const ScrubbedSource out = Scrub("ab\ncd\nef\n");
  EXPECT_EQ(out.LineOf(0), 1);
  EXPECT_EQ(out.LineOf(2), 1);  // the newline belongs to line 1
  EXPECT_EQ(out.LineOf(3), 2);
  EXPECT_EQ(out.LineOf(6), 3);
}

TEST(ExtractQuotedIncludesTest, FindsQuotedIncludesWithLines) {
  const auto includes = ExtractQuotedIncludes(
      "#include <vector>\n"
      "#include \"common/status.h\"\n"
      "\n"
      "  #  include \"core/scheduler.h\"\n");
  ASSERT_EQ(includes.size(), 2u);
  EXPECT_EQ(includes[0].first, 2);
  EXPECT_EQ(includes[0].second, "common/status.h");
  EXPECT_EQ(includes[1].first, 4);
  EXPECT_EQ(includes[1].second, "core/scheduler.h");
}

TEST(ExtractQuotedIncludesTest, IgnoresNonIncludeDirectives) {
  const auto includes =
      ExtractQuotedIncludes("#define X \"core/foo.h\"\n#pragma once\n");
  EXPECT_TRUE(includes.empty());
}

}  // namespace
}  // namespace lint
}  // namespace nextmaint
