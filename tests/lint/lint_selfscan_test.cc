#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/source_scan.h"

/// The linter's reason to exist: the real tree must be clean. This test is
/// the in-repo equivalent of the CI `lint` job, so a change that introduces
/// a nondeterminism primitive, drops a Status, breaks layering or leaks a
/// naked new fails the unit suite locally too.

#ifndef NEXTMAINT_LINT_SOURCE_ROOT
#error "tests/CMakeLists.txt must define NEXTMAINT_LINT_SOURCE_ROOT"
#endif

namespace nextmaint {
namespace lint {
namespace {

TEST(SelfScanTest, SourceTreeIsClean) {
  const auto findings =
      LintTree(NEXTMAINT_LINT_SOURCE_ROOT, {"src", "tools", "bench"},
               LintConfig::ProjectDefault());
  ASSERT_TRUE(findings.ok()) << findings.status().ToString();
  std::string report;
  for (const Finding& finding : findings.ValueOrDie()) {
    report += finding.ToString() + "\n";
  }
  EXPECT_TRUE(findings.ValueOrDie().empty()) << report;
}

TEST(SelfScanTest, HarvestFindsRealStatusApis) {
  // Guards against the harvest pass silently matching nothing (which would
  // make the unchecked-status rule vacuously pass on the real tree).
  std::ifstream in(std::string(NEXTMAINT_LINT_SOURCE_ROOT) +
                   "/src/core/scheduler.h");
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::set<std::string> harvested;
  CollectStatusFunctions(Scrub(buffer.str()), &harvested);
  EXPECT_TRUE(harvested.count("TrainAll")) << "harvested " << harvested.size();
  EXPECT_TRUE(harvested.count("RegisterVehicle"));
  EXPECT_TRUE(harvested.count("FleetForecast"));
}

TEST(LintTreeTest, MissingPathFails) {
  const auto findings =
      LintTree(NEXTMAINT_LINT_SOURCE_ROOT, {"no-such-directory"},
               LintConfig::ProjectDefault());
  EXPECT_FALSE(findings.ok());
  EXPECT_EQ(findings.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace lint
}  // namespace nextmaint
