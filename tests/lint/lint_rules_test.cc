#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/rules.h"
#include "lint/source_scan.h"

namespace nextmaint {
namespace lint {
namespace {

/// Applies the full rule set to an inline fixture under the project policy.
std::vector<Finding> Lint(const std::string& path, const std::string& content,
                          std::set<std::string> status_functions = {}) {
  const LintConfig config = LintConfig::ProjectDefault();
  const ScrubbedSource src = Scrub(content);
  CollectStatusFunctions(src, &status_functions);
  return LintSource(path, content, config, status_functions);
}

bool HasRule(const std::vector<Finding>& findings, Rule rule) {
  for (const Finding& finding : findings) {
    if (finding.rule == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------- rule 1

TEST(BannedPrimitiveRuleTest, FlagsRandCall) {
  const auto findings = Lint("src/ml/foo.cc", "int x = rand() % 7;\n");
  ASSERT_TRUE(HasRule(findings, Rule::kBannedPrimitive));
  EXPECT_EQ(findings[0].line, 1);
}

TEST(BannedPrimitiveRuleTest, FlagsRandomDeviceAndWallClock) {
  EXPECT_TRUE(HasRule(Lint("src/core/a.cc", "std::random_device rd;\n"),
                      Rule::kBannedPrimitive));
  EXPECT_TRUE(HasRule(Lint("src/core/a.cc", "auto t = time(nullptr);\n"),
                      Rule::kBannedPrimitive));
  EXPECT_TRUE(HasRule(Lint("src/core/a.cc", "srand(42);\n"),
                      Rule::kBannedPrimitive));
  EXPECT_TRUE(
      HasRule(Lint("src/core/a.cc",
                   "auto n = std::chrono::system_clock::now();\n"),
              Rule::kBannedPrimitive));
}

TEST(BannedPrimitiveRuleTest, PassesSeededRngAndSteadyClock) {
  EXPECT_TRUE(Lint("src/ml/foo.cc",
                   "Rng rng(42);\n"
                   "auto t0 = std::chrono::steady_clock::now();\n")
                  .empty());
}

TEST(BannedPrimitiveRuleTest, IgnoresMentionsInCommentsAndStrings) {
  EXPECT_TRUE(Lint("src/ml/foo.cc",
                   "// rand() is banned here\n"
                   "const char* msg = \"do not call time()\";\n")
                  .empty());
}

TEST(BannedPrimitiveRuleTest, DoesNotMatchIdentifierSuffixes) {
  // "runtime(" contains "time(" but is not the banned token.
  EXPECT_TRUE(Lint("src/ml/foo.cc", "double r = runtime(3);\n").empty());
}

TEST(BannedPrimitiveRuleTest, AllowlistExemptsRngModule) {
  const std::string source = "std::random_device rd;\n";
  EXPECT_TRUE(Lint("src/common/rng.cc", source).empty());
  EXPECT_FALSE(Lint("src/common/statistics.cc", source).empty());
}

TEST(BannedPrimitiveRuleTest, InlineSuppressionSilencesOneLine) {
  const auto findings = Lint(
      "src/ml/foo.cc",
      "auto t = time(nullptr);  // nextmaint-lint: allow(banned-primitive)\n"
      "auto u = time(nullptr);\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
}

// ---------------------------------------------------------------- rule 2

TEST(UncheckedStatusRuleTest, FlagsDiscardedStatusCall) {
  const auto findings = Lint("src/core/foo.cc",
                             "Status DoThing();\n"
                             "void F() {\n"
                             "  DoThing();\n"
                             "}\n");
  ASSERT_TRUE(HasRule(findings, Rule::kUncheckedStatus));
  EXPECT_EQ(findings[0].line, 3);
}

TEST(UncheckedStatusRuleTest, FlagsDiscardedMemberCall) {
  const auto findings =
      Lint("src/core/foo.cc",
           "void F(core::FleetScheduler& s) {\n"
           "  s.TrainAll();\n"
           "}\n",
           {"TrainAll"});
  ASSERT_TRUE(HasRule(findings, Rule::kUncheckedStatus));
  EXPECT_EQ(findings[0].line, 2);
}

TEST(UncheckedStatusRuleTest, PassesCheckedAssignedAndPropagated) {
  EXPECT_TRUE(Lint("src/core/foo.cc",
                   "Status DoThing();\n"
                   "Status F() {\n"
                   "  Status s = DoThing();\n"
                   "  if (!s.ok()) return s;\n"
                   "  NM_RETURN_NOT_OK(DoThing());\n"
                   "  NM_CHECK(DoThing().ok());\n"
                   "  return DoThing();\n"
                   "}\n")
                  .empty());
}

TEST(UncheckedStatusRuleTest, PassesExplicitIgnoreMacro) {
  EXPECT_TRUE(Lint("src/core/foo.cc",
                   "Status DoThing();\n"
                   "void F() {\n"
                   "  NEXTMAINT_IGNORE_STATUS(DoThing());\n"
                   "}\n")
                  .empty());
}

TEST(UncheckedStatusRuleTest, DeclarationsAreNotCalls) {
  EXPECT_TRUE(Lint("src/core/foo.h",
                   "class X {\n"
                   " public:\n"
                   "  Status TrainAll();\n"
                   "  [[nodiscard]] Status Save(std::ostream& out) const;\n"
                   "};\n"
                   "Status FreeFunction(int arg);\n")
                  .empty());
}

TEST(UncheckedStatusRuleTest, FlagsDiscardedResultCall) {
  const auto findings = Lint("src/data/foo.cc",
                             "Result<int> Parse(std::string_view t);\n"
                             "void F() {\n"
                             "  Parse(\"7\");\n"
                             "}\n");
  ASSERT_TRUE(HasRule(findings, Rule::kUncheckedStatus));
}

TEST(UncheckedStatusRuleTest, FailpointMacroStatementsPass) {
  // NEXTMAINT_FAILPOINT("site"); expands to a self-checking block (the
  // injected Status is tested and returned inside the macro), so a bare
  // macro statement must not read as a discarded Status-returning call.
  EXPECT_TRUE(Lint("src/data/foo.cc",
                   "Status Read() {\n"
                   "  NEXTMAINT_FAILPOINT(\"csv.read_row\");\n"
                   "  return Status::OK();\n"
                   "}\n")
                  .empty());
}

TEST(UncheckedStatusRuleTest, VoidFunctionsOfOtherNamesPass) {
  EXPECT_TRUE(Lint("src/core/foo.cc",
                   "void Log(const char* m);\n"
                   "void F() {\n"
                   "  Log(\"hello\");\n"
                   "}\n")
                  .empty());
}

// ---------------------------------------------------------------- rule 3

TEST(LayeringRuleTest, FlagsCommonIncludingCore) {
  const auto findings = Lint("src/common/util.cc",
                             "#include \"core/scheduler.h\"\n");
  ASSERT_TRUE(HasRule(findings, Rule::kLayering));
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LayeringRuleTest, FlagsMlIncludingData) {
  EXPECT_TRUE(HasRule(Lint("src/ml/foo.cc", "#include \"data/csv.h\"\n"),
                      Rule::kLayering));
}

TEST(LayeringRuleTest, PassesDeclaredDependencies) {
  EXPECT_TRUE(Lint("src/core/foo.cc",
                   "#include \"common/status.h\"\n"
                   "#include \"data/time_series.h\"\n"
                   "#include \"ml/regressor.h\"\n"
                   "#include \"core/scheduler.h\"\n")
                  .empty());
  EXPECT_TRUE(Lint("src/cli/foo.cc",
                   "#include \"telematics/fleet.h\"\n"
                   "#include \"core/scheduler.h\"\n")
                  .empty());
}

TEST(LayeringRuleTest, SystemIncludesAreExempt) {
  EXPECT_TRUE(Lint("src/common/util.cc", "#include <vector>\n").empty());
}

TEST(LayeringRuleTest, UnconstrainedDirectoriesPass) {
  // tests/ and bench/ may include anything.
  EXPECT_TRUE(Lint("bench/harness.cc",
                   "#include \"core/scheduler.h\"\n"
                   "#include \"telematics/fleet.h\"\n")
                  .empty());
}

TEST(LayeringRuleTest, UmbrellaHeaderBannedInLayeredCode) {
  EXPECT_TRUE(HasRule(Lint("src/core/foo.cc", "#include \"nextmaint.h\"\n"),
                      Rule::kLayering));
  EXPECT_TRUE(Lint("bench/foo.cc", "#include \"nextmaint.h\"\n").empty());
}

// ---------------------------------------------------------------- rule 4

TEST(NakedNewRuleTest, FlagsNewAndDeleteExpressions) {
  const auto new_findings =
      Lint("src/core/foo.cc", "auto* p = new int[4];\n");
  ASSERT_TRUE(HasRule(new_findings, Rule::kNakedNew));
  const auto delete_findings = Lint("src/core/foo.cc", "delete p;\n");
  ASSERT_TRUE(HasRule(delete_findings, Rule::kNakedNew));
  EXPECT_TRUE(HasRule(Lint("src/core/foo.cc", "delete[] p;\n"),
                      Rule::kNakedNew));
}

TEST(NakedNewRuleTest, PassesSmartPointersAndDeletedFunctions) {
  EXPECT_TRUE(Lint("src/core/foo.cc",
                   "auto p = std::make_unique<int>(4);\n"
                   "X(const X&) = delete;\n"
                   "X& operator=(const X&) = delete;\n")
                  .empty());
}

TEST(NakedNewRuleTest, AllowlistedLeakySingletonFilesPass) {
  const std::string source = "auto* s = new std::string();\n";
  EXPECT_TRUE(Lint("src/common/status.cc", source).empty());
  EXPECT_FALSE(Lint("src/common/date.cc", source).empty());
}

TEST(NakedNewRuleTest, InlineSuppressionWorks) {
  EXPECT_TRUE(
      Lint("src/core/foo.cc",
           "auto* p = new Pool();  // nextmaint-lint: allow(naked-new)\n")
          .empty());
}

// ---------------------------------------------------------------- rule 5

TEST(RowIterationRuleTest, FlagsMatrixIncludeInHistogramFiles) {
  const auto findings = Lint("src/ml/histogram.cc",
                             "#include \"ml/matrix.h\"\n");
  ASSERT_TRUE(HasRule(findings, Rule::kRowIteration));
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_TRUE(HasRule(Lint("src/ml/histogram.h",
                           "#include \"ml/dataset.h\"\n"),
                      Rule::kRowIteration));
}

TEST(RowIterationRuleTest, FlagsRowAndColAccess) {
  EXPECT_TRUE(HasRule(Lint("src/ml/histogram.cc",
                           "double v = x.Row(3)[0];\n"),
                      Rule::kRowIteration));
  EXPECT_TRUE(HasRule(Lint("src/ml/histogram.h",
                           "auto c = m->Col(feature);\n"),
                      Rule::kRowIteration));
}

TEST(RowIterationRuleTest, BinSourceAccessPasses) {
  EXPECT_TRUE(Lint("src/ml/histogram.h",
                   "#include \"ml/binned_dataset.h\"\n"
                   "uint32_t b = bins.Bin(feature, row);\n")
                  .empty());
}

TEST(RowIterationRuleTest, OtherFilesAreUnconstrained) {
  // Row iteration is the norm everywhere outside the histogram kernels.
  EXPECT_TRUE(Lint("src/ml/linear_models.cc",
                   "#include \"ml/matrix.h\"\n"
                   "double v = x.Row(3)[0];\n")
                  .empty());
}

TEST(RowIterationRuleTest, CommentsAndSuppressionsWork) {
  EXPECT_TRUE(Lint("src/ml/histogram.cc",
                   "// never call x.Row(r) in this file\n")
                  .empty());
  EXPECT_TRUE(
      Lint("src/ml/histogram.cc",
           "auto r = x.Row(0);  // nextmaint-lint: allow(row-iteration)\n")
          .empty());
}

// ---------------------------------------------------------------- rule 6

TEST(GuardedMutexRuleTest, FlagsRawStdMutexOutsideCommon) {
  const auto findings = Lint("src/serve/foo.h",
                             "class Q {\n"
                             "  std::mutex mu_;\n"
                             "  int x_ GUARDED_BY(mu_);\n"
                             "};\n");
  ASSERT_TRUE(HasRule(findings, Rule::kGuardedMutex));
  EXPECT_EQ(findings[0].line, 2);
}

TEST(GuardedMutexRuleTest, FlagsMutexGuardingNothing) {
  const auto findings = Lint("src/serve/foo.h",
                             "class Q {\n"
                             "  Mutex mu_;\n"
                             "  int x_;\n"
                             "};\n");
  ASSERT_TRUE(HasRule(findings, Rule::kGuardedMutex));
  EXPECT_EQ(findings[0].line, 2);
}

TEST(GuardedMutexRuleTest, PassesGuardedAnnotatedMutex) {
  EXPECT_TRUE(Lint("src/serve/foo.h",
                   "class Q {\n"
                   "  mutable Mutex mu_;\n"
                   "  int x_ GUARDED_BY(mu_);\n"
                   "  char* p_ PT_GUARDED_BY(mu_);\n"
                   "};\n")
                  .empty());
}

TEST(GuardedMutexRuleTest, RawStdMutexAllowedUnderCommonWhenGuarding) {
  const std::string source =
      "struct R {\n"
      "  std::mutex mu;\n"
      "  int n GUARDED_BY(mu);\n"
      "};\n";
  EXPECT_TRUE(Lint("src/common/foo.cc", source).empty());
  EXPECT_FALSE(Lint("src/core/foo.cc", source).empty());
}

TEST(GuardedMutexRuleTest, ReferencesAndParametersDoNotMatch) {
  EXPECT_TRUE(Lint("src/serve/foo.h",
                   "void Wait(Mutex& mu);\n"
                   "void Lock(std::mutex* mu);\n")
                  .empty());
}

TEST(GuardedMutexRuleTest, WrapperHeaderIsExempt) {
  EXPECT_TRUE(Lint("src/common/thread_annotations.h",
                   "class Mutex {\n"
                   "  std::mutex raw_;\n"
                   "};\n")
                  .empty());
}

TEST(GuardedMutexRuleTest, InlineSuppressionSilencesOneLine) {
  const auto findings = Lint(
      "src/serve/foo.h",
      "class Q {\n"
      "  Mutex a_;  // nextmaint-lint: allow(guarded-mutex)\n"
      "  Mutex b_;\n"
      "};\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[0].rule, Rule::kGuardedMutex);
}

// ---------------------------------------------------------------- rule 7

TEST(LockAnnotationDriftRuleTest, FlagsRawLockingVocabulary) {
  EXPECT_TRUE(HasRule(
      Lint("src/core/foo.cc", "std::lock_guard<std::mutex> lock(mu_);\n"),
      Rule::kLockAnnotationDrift));
  EXPECT_TRUE(HasRule(
      Lint("src/core/foo.cc", "std::unique_lock<std::mutex> lock(mu_);\n"),
      Rule::kLockAnnotationDrift));
  EXPECT_TRUE(HasRule(Lint("src/core/foo.cc", "std::condition_variable cv;\n"),
                      Rule::kLockAnnotationDrift));
  EXPECT_TRUE(
      HasRule(Lint("src/core/foo.cc", "std::condition_variable_any cv;\n"),
              Rule::kLockAnnotationDrift));
  EXPECT_TRUE(HasRule(Lint("src/core/foo.cc", "std::shared_mutex rw;\n"),
                      Rule::kLockAnnotationDrift));
}

TEST(LockAnnotationDriftRuleTest, PassesAnnotatedWrappers) {
  EXPECT_TRUE(Lint("src/serve/foo.cc",
                   "MutexLock lock(mu_);\n"
                   "while (queue_.empty()) cv_.Wait(mu_);\n"
                   "cv_.NotifyAll();\n")
                  .empty());
}

TEST(LockAnnotationDriftRuleTest, WrapperFilesAreExempt) {
  EXPECT_TRUE(Lint("src/common/thread_annotations.cc",
                   "std::unique_lock<std::mutex> relock(mu.raw_);\n")
                  .empty());
}

TEST(LockAnnotationDriftRuleTest, FlagsSuppressionInServeAndParallel) {
  const std::string source = "void F() NO_THREAD_SAFETY_ANALYSIS;\n";
  EXPECT_TRUE(HasRule(Lint("src/serve/daemon.cc", source),
                      Rule::kLockAnnotationDrift));
  EXPECT_TRUE(HasRule(Lint("src/common/parallel.cc", source),
                      Rule::kLockAnnotationDrift));
  // Elsewhere NO_THREAD_SAFETY_ANALYSIS is discouraged but not lint-banned.
  EXPECT_TRUE(Lint("src/common/telemetry.cc", source).empty());
}

TEST(LockAnnotationDriftRuleTest, IgnoresCommentsAndSuppressions) {
  EXPECT_TRUE(Lint("src/core/foo.cc",
                   "// replaced std::lock_guard with MutexLock\n")
                  .empty());
  EXPECT_TRUE(
      Lint("src/core/foo.cc",
           "std::lock_guard<std::mutex> lock(mu_);  "
           "// nextmaint-lint: allow(lock-annotation-drift)\n")
          .empty());
}

// ------------------------------------------------------------- plumbing

TEST(FindingTest, ToStringFormat) {
  const Finding finding{"src/core/foo.cc", 12, Rule::kLayering, "bad"};
  EXPECT_EQ(finding.ToString(), "src/core/foo.cc:12: [layering] bad");
}

TEST(RuleNameTest, KebabCaseNames) {
  EXPECT_STREQ(RuleName(Rule::kBannedPrimitive), "banned-primitive");
  EXPECT_STREQ(RuleName(Rule::kUncheckedStatus), "unchecked-status");
  EXPECT_STREQ(RuleName(Rule::kLayering), "layering");
  EXPECT_STREQ(RuleName(Rule::kNakedNew), "naked-new");
  EXPECT_STREQ(RuleName(Rule::kRowIteration), "row-iteration");
  EXPECT_STREQ(RuleName(Rule::kGuardedMutex), "guarded-mutex");
  EXPECT_STREQ(RuleName(Rule::kLockAnnotationDrift), "lock-annotation-drift");
}

}  // namespace
}  // namespace lint
}  // namespace nextmaint
