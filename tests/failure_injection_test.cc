// Failure-injection tests: corrupt, adversarial or degenerate inputs at
// every pipeline seam must surface clean Status errors (or documented
// repairs) — never crashes, NaN propagation or silent nonsense.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "nextmaint.h"

namespace nextmaint {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

// ---------------------------------------------------------------------------
// CSV layer.
// ---------------------------------------------------------------------------

TEST(CsvFailureTest, BinaryGarbageDoesNotCrash) {
  std::string garbage = "a,b\n\x01\x02\x03,\xff\xfe\n";
  std::istringstream stream(garbage);
  // Unparsable bytes become string cells; the reader stays well-defined.
  const auto result = data::ReadCsv(stream);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().num_rows(), 1u);
}

TEST(CsvFailureTest, MissingColumnsSurfaceAsNotFound) {
  std::istringstream stream("wrong,names\n1,2\n");
  const data::Table table = data::ReadCsv(stream).ValueOrDie();
  EXPECT_EQ(data::AggregateDaily(table, "date", "utilization_s")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(CsvFailureTest, HugeFieldHandled) {
  std::string big_field(1 << 20, 'x');
  std::istringstream stream("a\n" + big_field + "\n");
  const auto result = data::ReadCsv(stream);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().column(0).StringAt(0).size(), 1u << 20);
}

// ---------------------------------------------------------------------------
// Preparation pipeline.
// ---------------------------------------------------------------------------

TEST(PipelineFailureTest, AllNaNSeriesRepairsToZeros) {
  data::DailySeries series(Day(0), std::vector<double>(30, kNaN));
  data::Clean(&series);
  EXPECT_TRUE(series.IsComplete());
  // A fully repaired dead series categorizes as new, not as an error.
  EXPECT_EQ(core::CategorizeUsage(series, 2e6).ValueOrDie(),
            core::VehicleCategory::kNew);
}

TEST(PipelineFailureTest, NegativeAndOverflowingUsageClamped) {
  data::DailySeries series(Day(0), {-500.0, 1e12, 3'000.0});
  const data::CleaningReport report = data::Clean(&series);
  EXPECT_EQ(report.clamped_low, 1u);
  EXPECT_EQ(report.clamped_high, 1u);
  const auto derived = core::DeriveSeries(series, 90'000.0);
  ASSERT_TRUE(derived.ok());  // clamped values are derivable
}

TEST(PipelineFailureTest, DeriveSeriesRejectsUncleanData) {
  data::DailySeries dirty(Day(0), {1.0, kNaN});
  EXPECT_EQ(core::DeriveSeries(dirty, 100.0).status().code(),
            StatusCode::kDataError);
}

TEST(PipelineFailureTest, InfinityIsClampedByCleaning) {
  data::DailySeries series(
      Day(0), {std::numeric_limits<double>::infinity(), 10.0});
  data::Clean(&series);
  EXPECT_DOUBLE_EQ(series[0], 86'400.0);
}

// ---------------------------------------------------------------------------
// Model layer.
// ---------------------------------------------------------------------------

TEST(ModelFailureTest, AllModelsRejectNonFiniteTraining) {
  ml::Dataset poisoned;
  const std::vector<double> bad_row = {kNaN, 1.0};
  const std::vector<double> good_row = {1.0, 2.0};
  poisoned.AddRow(std::span<const double>(bad_row.data(), 2), 1.0);
  poisoned.AddRow(std::span<const double>(good_row.data(), 2), 2.0);
  for (const std::string& name : ml::RegisteredModelNames()) {
    auto model = ml::MakeRegressor(name).MoveValueOrDie();
    EXPECT_FALSE(model->Fit(poisoned).ok()) << name;
  }
}

TEST(ModelFailureTest, SingleRowDatasetsTrainOrFailCleanly) {
  ml::Dataset tiny;
  const std::vector<double> row = {1.0};
  tiny.AddRow(std::span<const double>(row.data(), 1), 5.0);
  for (const std::string& name : ml::RegisteredModelNames()) {
    auto model = ml::MakeRegressor(name).MoveValueOrDie();
    const Status status = model->Fit(tiny);
    if (status.ok()) {
      const auto pred =
          model->Predict(std::span<const double>(row.data(), 1));
      ASSERT_TRUE(pred.ok()) << name;
      EXPECT_TRUE(std::isfinite(pred.ValueOrDie())) << name;
    }
  }
}

TEST(ModelFailureTest, ExtremeFeatureMagnitudesStayFinite) {
  Rng rng(3);
  ml::Dataset extreme;
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> row = {rng.Uniform(0, 1e12),
                                     rng.Uniform(-1e-9, 1e-9)};
    extreme.AddRow(std::span<const double>(row.data(), 2),
                   rng.Uniform(0, 300));
  }
  for (const std::string& name : ml::RegisteredModelNames()) {
    auto model = ml::MakeRegressor(name).MoveValueOrDie();
    ASSERT_TRUE(model->Fit(extreme).ok()) << name;
    const std::vector<double> probe = {5e11, 0.0};
    const auto pred =
        model->Predict(std::span<const double>(probe.data(), 2));
    ASSERT_TRUE(pred.ok()) << name;
    EXPECT_TRUE(std::isfinite(pred.ValueOrDie())) << name;
  }
}

// ---------------------------------------------------------------------------
// Serialized-model layer.
// ---------------------------------------------------------------------------

TEST(SerializedModelFailureTest, FuzzedHeadersNeverCrash) {
  const char* cases[] = {
      "",
      "\n\n\n",
      "nextmaint-model",
      "nextmaint-model v1",
      "nextmaint-model v1 RF trees -5\n",
      "nextmaint-model v1 XGB base nan\n",
      "nextmaint-model v1 Tree features 1 nodes 1\n0 0 0 0\nend\n",
      "nextmaint-model v1 LR weights 3 1 2\nend\n",
  };
  for (const char* text : cases) {
    std::istringstream stream(text);
    EXPECT_FALSE(ml::LoadRegressor(stream).ok()) << "case: " << text;
  }
}

TEST(SerializedModelFailureTest, GiganticNodeCountRejectedGracefully) {
  // Claims 4 billion nodes but provides none: the reader must fail on the
  // truncated list, not allocate unbounded memory up front. (resize to the
  // claimed count is bounded by the subsequent parse failure.)
  std::istringstream stream(
      "nextmaint-model v1 Tree\nfeatures 1\nnodes 10\n1 2 0 0.5 1\nend\n");
  EXPECT_FALSE(ml::LoadRegressor(stream).ok());
}

// ---------------------------------------------------------------------------
// Scheduler seam.
// ---------------------------------------------------------------------------

TEST(SchedulerFailureTest, TelemetryOutageRepairedUpstream) {
  // A vehicle with injected outages must flow through Clean -> scheduler.
  Rng rng(4);
  telem::VehicleProfile profile = telem::DefaultFleetProfiles(1, &rng)[0];
  profile.maintenance_interval_s = 500'000.0;
  Rng sim_rng(5);
  auto history =
      telem::SimulateVehicle(profile, Day(0), 700, 0.08, &sim_rng)
          .ValueOrDie();
  ASSERT_GT(history.utilization.MissingCount(), 0u);

  core::SchedulerOptions options;
  options.maintenance_interval_s = 500'000.0;
  options.window = 3;
  options.algorithms = {"BL", "LR"};
  options.selection.tune = false;
  core::FleetScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterVehicle("v", Day(0)).ok());
  // Raw ingestion fails (missing values)...
  EXPECT_EQ(scheduler.IngestSeries("v", history.utilization).code(),
            StatusCode::kDataError);
  // ...and succeeds after the documented cleaning step.
  data::Clean(&history.utilization);
  EXPECT_TRUE(scheduler.IngestSeries("v", history.utilization).ok());
  EXPECT_TRUE(scheduler.TrainAll().ok());
  EXPECT_TRUE(scheduler.Forecast("v").ok());
}

TEST(SchedulerFailureTest, LoadCheckpointFromGarbageFails) {
  core::SchedulerOptions options;
  core::FleetScheduler scheduler(options);
  const std::string path = ::testing::TempDir() + "/garbage_checkpoint.txt";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "vehicle v1 RF\nnot-a-model\n";
  }
  EXPECT_FALSE(scheduler.LoadCheckpoint(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nextmaint
