#include "common/strings.h"

#include <gtest/gtest.h>

namespace nextmaint {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, TrailingDelimiter) {
  EXPECT_EQ(Split("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
}

TEST(SplitTest, AlternativeDelimiter) {
  EXPECT_EQ(Split("1;2;3", ';'), (std::vector<std::string>{"1", "2", "3"}));
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("nothing"), "nothing");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(TrimTest, KeepsInteriorWhitespace) {
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"only"}, ","), "only");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").ValueOrDie(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").ValueOrDie(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("  7 ").ValueOrDie(), 7.0);
  EXPECT_DOUBLE_EQ(ParseDouble("0").ValueOrDie(), 0.0);
}

TEST(ParseDoubleTest, RejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("   ").ok());
  EXPECT_FALSE(ParseDouble("12abc").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt64("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("-17").ValueOrDie(), -17);
  EXPECT_EQ(ParseInt64(" 100 ").ValueOrDie(), 100);
}

TEST(ParseInt64Test, RejectsInvalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("3.5").ok());
  EXPECT_FALSE(ParseInt64("ten").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());  // overflow
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("nextmaint", "next"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(StartsWith("abc", "abc"));
  EXPECT_FALSE(StartsWith("abc", "abcd"));
  EXPECT_FALSE(StartsWith("abc", "b"));
}

TEST(FormatDoubleTest, RespectsPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 3), "2.000");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d items, %.1f s", 3, 2.5), "3 items, 2.5 s");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StrFormatTest, HandlesLongOutput) {
  const std::string long_arg(1000, 'x');
  const std::string result = StrFormat("<%s>", long_arg.c_str());
  EXPECT_EQ(result.size(), 1002u);
  EXPECT_EQ(result.front(), '<');
  EXPECT_EQ(result.back(), '>');
}

}  // namespace
}  // namespace nextmaint
