#include "common/thread_annotations.h"

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

// Exercises the annotated locking vocabulary (docs/static-analysis.md):
// Mutex/MutexLock mutual exclusion, the explicit ACQUIRE/RELEASE path,
// TryLock semantics across threads, and CondVar's while-loop wait protocol.
// This file itself builds under -Wthread-safety in the thread-safety CI job,
// so every test doubles as a positive compile fixture for the annotations.

namespace nextmaint {
namespace {

struct GuardedCounter {
  Mutex mu;
  long value GUARDED_BY(mu) = 0;

  void Increment() EXCLUDES(mu) {
    MutexLock lock(mu);
    ++value;
  }
  long Read() EXCLUDES(mu) {
    MutexLock lock(mu);
    return value;
  }
};

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter.Read(),
            static_cast<long>(kThreads) * kIncrementsPerThread);
}

TEST(MutexTest, ExplicitLockUnlockPairWorks) {
  GuardedCounter counter;
  counter.mu.Lock();
  counter.value = 42;
  counter.mu.Unlock();
  EXPECT_EQ(counter.Read(), 42);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  // A *different* thread must observe the mutex as busy (TryLock on the
  // owning thread would be undefined for a non-recursive mutex).
  bool acquired = true;
  std::thread prober([&mu, &acquired] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  std::thread retry([&mu, &acquired] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  retry.join();
  EXPECT_TRUE(acquired);
}

// The canonical annotated wait shape: while-loop around CondVar::Wait with
// every condition read under the lock. Mirrors ThreadPool::WorkerLoop and
// FleetDaemon::ShardLoop.
struct BoundedQueue {
  Mutex mu;
  CondVar cv;
  std::deque<int> items GUARDED_BY(mu);
  bool done GUARDED_BY(mu) = false;

  void Push(int item) EXCLUDES(mu) {
    {
      MutexLock lock(mu);
      items.push_back(item);
    }
    cv.NotifyOne();
  }
  void Close() EXCLUDES(mu) {
    {
      MutexLock lock(mu);
      done = true;
    }
    cv.NotifyAll();
  }
  long DrainAll() EXCLUDES(mu) {
    long sum = 0;
    MutexLock lock(mu);
    for (;;) {
      while (items.empty() && !done) cv.Wait(mu);
      while (!items.empty()) {
        sum += items.front();
        items.pop_front();
      }
      if (done) return sum;
    }
  }
  bool Empty() EXCLUDES(mu) {
    MutexLock lock(mu);
    return items.empty();
  }
};

TEST(CondVarTest, ProducerConsumerDrainsBoundedQueue) {
  BoundedQueue queue;
  constexpr int kItems = 1000;

  long consumed_sum = 0;
  std::thread consumer([&] { consumed_sum = queue.DrainAll(); });
  for (int i = 1; i <= kItems; ++i) queue.Push(i);
  queue.Close();
  consumer.join();

  EXPECT_EQ(consumed_sum, static_cast<long>(kItems) * (kItems + 1) / 2);
  EXPECT_TRUE(queue.Empty());
}

struct Gate {
  Mutex mu;
  CondVar cv;
  bool released GUARDED_BY(mu) = false;

  void Open() EXCLUDES(mu) {
    {
      MutexLock lock(mu);
      released = true;
    }
    cv.NotifyAll();
  }
  void Await() EXCLUDES(mu) {
    MutexLock lock(mu);
    while (!released) cv.Wait(mu);
  }
};

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Gate gate;
  constexpr int kWaiters = 4;
  std::atomic<int> awake{0};

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      gate.Await();
      awake.fetch_add(1);
    });
  }
  gate.Open();
  for (std::thread& waiter : waiters) waiter.join();
  EXPECT_EQ(awake.load(), kWaiters);
}

}  // namespace
}  // namespace nextmaint
