#include "common/failpoints.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace nextmaint {
namespace failpoints {
namespace {

/// Every test starts from a disarmed registry and leaves it disarmed, so
/// the fixture composes with any test order in the shared binary.
class FailpointsTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!CompiledIn()) {
      GTEST_SKIP() << "failpoints compiled out "
                      "(NEXTMAINT_ENABLE_FAILPOINTS=OFF)";
    }
    DisarmAll();
  }
  void TearDown() override {
    if (CompiledIn()) DisarmAll();
  }
};

TEST_F(FailpointsTest, DisarmedSitesAreFreeAndOk) {
  EXPECT_FALSE(Enabled());
  EXPECT_TRUE(Check("csv.read_row").ok());
  EXPECT_EQ(HitCount("csv.read_row"), 0u);
}

TEST_F(FailpointsTest, CatalogueIsSortedAndSelfConsistent) {
  const std::vector<std::string>& sites = RegisteredSites();
  ASSERT_FALSE(sites.empty());
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  for (const std::string& site : sites) {
    EXPECT_TRUE(IsRegisteredSite(site)) << site;
  }
  EXPECT_FALSE(IsRegisteredSite("no.such.site"));
}

TEST_F(FailpointsTest, ArmRejectsUnknownSitesAndMalformedSpecs) {
  EXPECT_EQ(Arm("no.such.site").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Arm("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Arm("ml.fit:abc").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Arm("ml.fit:-1").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Arm("ml.fit:1:bogus").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Arm("ml.fit:1:io:extra").code(), StatusCode::kInvalidArgument);
  // A bad spec in a list arms nothing.
  EXPECT_FALSE(Arm("ml.fit,no.such.site").ok());
  EXPECT_FALSE(Enabled());
}

TEST_F(FailpointsTest, ArmedSiteFiresEveryHitByDefault) {
  ASSERT_TRUE(Arm("ml.fit").ok());
  EXPECT_TRUE(Enabled());
  const Status first = Check("ml.fit");
  EXPECT_EQ(first.code(), StatusCode::kUnknown);
  EXPECT_NE(first.message().find("ml.fit"), std::string::npos);
  EXPECT_FALSE(Check("ml.fit").ok());
  EXPECT_EQ(HitCount("ml.fit"), 2u);
  EXPECT_EQ(FiredCount("ml.fit"), 2u);
  // Other sites are unaffected.
  EXPECT_TRUE(Check("csv.read_row").ok());
}

TEST_F(FailpointsTest, KindsMapToStatusCodes) {
  const std::vector<std::pair<std::string, StatusCode>> kinds = {
      {"error", StatusCode::kUnknown},
      {"io", StatusCode::kIOError},
      {"data", StatusCode::kDataError},
      {"numeric", StatusCode::kNumericError},
      {"notfound", StatusCode::kNotFound},
  };
  for (const auto& [kind, code] : kinds) {
    DisarmAll();
    ASSERT_TRUE(Arm("csv.open_file:0:" + kind).ok());
    EXPECT_EQ(Check("csv.open_file").code(), code) << kind;
  }
}

TEST_F(FailpointsTest, NthSelectsTheNthUncontextedHit) {
  ASSERT_TRUE(Arm("csv.read_row:3").ok());
  EXPECT_TRUE(Check("csv.read_row").ok());
  EXPECT_TRUE(Check("csv.read_row").ok());
  EXPECT_FALSE(Check("csv.read_row").ok());  // third hit
  EXPECT_TRUE(Check("csv.read_row").ok());   // nth is one-shot per counter
  EXPECT_EQ(FiredCount("csv.read_row"), 1u);
}

TEST_F(FailpointsTest, NthSelectorsAccumulateAcrossSpecs) {
  ASSERT_TRUE(Arm("csv.read_row:1,csv.read_row:3").ok());
  EXPECT_FALSE(Check("csv.read_row").ok());
  EXPECT_TRUE(Check("csv.read_row").ok());
  EXPECT_FALSE(Check("csv.read_row").ok());
}

TEST_F(FailpointsTest, OrdinalContextOverridesTheHitCounter) {
  ASSERT_TRUE(Arm("scheduler.train_vehicle:2").ok());
  {
    ScopedOrdinal first(1);
    // Any number of hits in ordinal 1: never fires.
    EXPECT_TRUE(Check("scheduler.train_vehicle").ok());
    EXPECT_TRUE(Check("scheduler.train_vehicle").ok());
  }
  {
    ScopedOrdinal second(2);
    // Every hit in ordinal 2 fires, however threads interleave hits.
    EXPECT_FALSE(Check("scheduler.train_vehicle").ok());
    EXPECT_FALSE(Check("scheduler.train_vehicle").ok());
  }
  // Context hits must not advance the uncontexted counter: outside any
  // ordinal the counter starts at 1, which is not armed.
  EXPECT_TRUE(Check("scheduler.train_vehicle").ok());
}

TEST_F(FailpointsTest, ScopedOrdinalNestsAndRestores) {
  ASSERT_TRUE(Arm("ml.fit:2").ok());
  ScopedOrdinal outer(2);
  EXPECT_FALSE(Check("ml.fit").ok());
  {
    ScopedOrdinal inner(5);
    EXPECT_TRUE(Check("ml.fit").ok());
    {
      ScopedOrdinal cleared(0);  // explicit no-context
      EXPECT_TRUE(Check("ml.fit").ok());
    }
  }
  EXPECT_FALSE(Check("ml.fit").ok());  // outer ordinal restored
}

TEST_F(FailpointsTest, DisarmStopsInjectionAndZeroesNothingElse) {
  ASSERT_TRUE(Arm("ml.fit,csv.read_row").ok());
  EXPECT_FALSE(Check("ml.fit").ok());
  Disarm("ml.fit");
  EXPECT_TRUE(Check("ml.fit").ok());
  EXPECT_TRUE(Enabled());  // csv.read_row still armed
  Disarm("csv.read_row");
  EXPECT_FALSE(Enabled());
  Disarm("never.armed");  // no-op, no crash
}

TEST_F(FailpointsTest, EnvSpecIsParsedOnFirstUse) {
  ResetForTesting();
  ASSERT_EQ(setenv("NEXTMAINT_FAILPOINTS", "preprocess.aggregate:0:data", 1),
            0);
  EXPECT_TRUE(Enabled());
  EXPECT_EQ(Check("preprocess.aggregate").code(), StatusCode::kDataError);
  ASSERT_EQ(unsetenv("NEXTMAINT_FAILPOINTS"), 0);
  // The env is latched: clearing the variable does not disarm.
  EXPECT_TRUE(Enabled());
  ResetForTesting();
  EXPECT_FALSE(Enabled());
}

TEST_F(FailpointsTest, ArmMergesWithEnvSpec) {
  ResetForTesting();
  ASSERT_EQ(setenv("NEXTMAINT_FAILPOINTS", "ml.fit", 1), 0);
  ASSERT_TRUE(Arm("csv.open_file").ok());
  EXPECT_FALSE(Check("ml.fit").ok());
  EXPECT_FALSE(Check("csv.open_file").ok());
  ASSERT_EQ(unsetenv("NEXTMAINT_FAILPOINTS"), 0);
  ResetForTesting();
}

TEST(FailpointsMacroTest, MacroReturnsInjectedStatusFromEnclosingFunction) {
  if (!CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  DisarmAll();
  const auto guarded_status = []() -> Status {
    NEXTMAINT_FAILPOINT("ml.fit");
    return Status::OK();
  };
  const auto guarded_result = []() -> Result<int> {
    NEXTMAINT_FAILPOINT("ml.fit");
    return 42;
  };
  EXPECT_TRUE(guarded_status().ok());
  EXPECT_EQ(guarded_result().ValueOrDie(), 42);
  ASSERT_TRUE(Arm("ml.fit:0:io").ok());
  EXPECT_EQ(guarded_status().code(), StatusCode::kIOError);
  EXPECT_EQ(guarded_result().status().code(), StatusCode::kIOError);
  DisarmAll();
}

}  // namespace
}  // namespace failpoints
}  // namespace nextmaint
