#include "common/logging.h"

#include <gtest/gtest.h>

namespace nextmaint {
namespace {

/// Captures stderr around a callback (gtest's capture facility).
template <typename Fn>
std::string CaptureStderr(Fn&& fn) {
  testing::internal::CaptureStderr();
  fn();
  return testing::internal::GetCapturedStderr();
}

class LoggingTest : public testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogThreshold(); }
  void TearDown() override { SetLogThreshold(previous_); }
  LogLevel previous_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, DefaultThresholdSuppressesInfo) {
  SetLogThreshold(LogLevel::kWarning);
  const std::string output =
      CaptureStderr([] { NM_LOG(Info) << "hidden message"; });
  EXPECT_TRUE(output.empty());
}

TEST_F(LoggingTest, WarningsAreEmittedWithMetadata) {
  SetLogThreshold(LogLevel::kWarning);
  const std::string output =
      CaptureStderr([] { NM_LOG(Warning) << "disk almost full: " << 93 << "%"; });
  EXPECT_NE(output.find("disk almost full: 93%"), std::string::npos);
  EXPECT_NE(output.find("[WARN"), std::string::npos);
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, ThresholdChangeTakesEffect) {
  SetLogThreshold(LogLevel::kDebug);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kDebug);
  const std::string output =
      CaptureStderr([] { NM_LOG(Debug) << "now visible"; });
  EXPECT_NE(output.find("now visible"), std::string::npos);
  EXPECT_NE(output.find("[DEBUG"), std::string::npos);

  SetLogThreshold(LogLevel::kError);
  const std::string suppressed =
      CaptureStderr([] { NM_LOG(Warning) << "quiet"; });
  EXPECT_TRUE(suppressed.empty());
}

TEST_F(LoggingTest, ErrorAlwaysEmitted) {
  SetLogThreshold(LogLevel::kError);
  const std::string output =
      CaptureStderr([] { NM_LOG(Error) << "fatal-ish"; });
  EXPECT_NE(output.find("[ERROR"), std::string::npos);
}

TEST_F(LoggingTest, StreamedValuesNotEvaluatedWhenDisabled) {
  SetLogThreshold(LogLevel::kError);
  // Values are still evaluated (stream semantics), but nothing is emitted;
  // this documents the contract.
  int calls = 0;
  auto count = [&calls]() {
    ++calls;
    return 1;
  };
  const std::string output =
      CaptureStderr([&] { NM_LOG(Info) << count(); });
  EXPECT_TRUE(output.empty());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace nextmaint
