#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"

namespace nextmaint {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::DataError("x").code(), StatusCode::kDataError);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NumericError("x").code(), StatusCode::kNumericError);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unknown("x").code(), StatusCode::kUnknown);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("vehicle v9").ToString(),
            "not-found: vehicle v9");
}

TEST(StatusTest, WithContextPrependsOnError) {
  const Status inner = Status::IOError("disk full");
  const Status outer = inner.WithContext("writing report");
  EXPECT_EQ(outer.code(), StatusCode::kIOError);
  EXPECT_EQ(outer.message(), "writing report: disk full");
}

TEST(StatusTest, WithContextIsNoOpOnOk) {
  const Status ok = Status::OK().WithContext("anything");
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.message(), "");
}

TEST(StatusTest, CopyPreservesState) {
  const Status original = Status::DataError("row 7");
  const Status copy = original;  // NOLINT(performance-unnecessary-copy...)
  EXPECT_EQ(copy, original);
  EXPECT_EQ(copy.message(), "row 7");
}

TEST(StatusTest, MovedFromStatusStaysValid) {
  Status original = Status::DataError("row 7");
  const Status moved = std::move(original);
  EXPECT_EQ(moved.code(), StatusCode::kDataError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::DataError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusCodeTest, EveryCodeHasAName) {
  for (int code = 0; code <= 8; ++code) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(code)),
                 "invalid-code");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> error(Status::NotFound("nope"));
  EXPECT_EQ(error.ValueOr(-1), -1);
  Result<int> value(5);
  EXPECT_EQ(value.ValueOr(-1), 5);
}

TEST(ResultTest, MoveValueOrDieTransfersOwnership) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(9));
  std::unique_ptr<int> value = result.MoveValueOrDie();
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 9);
}

TEST(ResultTest, ValueOrDieOnErrorAborts) {
  Result<int> error(Status::DataError("boom"));
  EXPECT_DEATH(error.ValueOrDie(), "boom");
}

// Helpers exercising the propagation macros.
Status FailingStep() { return Status::IOError("inner failure"); }

Status UsesReturnNotOk() {
  NM_RETURN_NOT_OK(FailingStep());
  return Status::OK();
}

Result<int> ProducesValue() { return 21; }

Result<int> UsesAssignOrReturn() {
  NM_ASSIGN_OR_RETURN(int value, ProducesValue());
  return value * 2;
}

Result<int> PropagatesError() {
  NM_ASSIGN_OR_RETURN(int value, Result<int>(Status::NotFound("gone")));
  return value;
}

TEST(MacrosTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kIOError);
}

TEST(MacrosTest, AssignOrReturnBindsValue) {
  EXPECT_EQ(UsesAssignOrReturn().ValueOrDie(), 42);
}

TEST(MacrosTest, AssignOrReturnPropagatesError) {
  EXPECT_EQ(PropagatesError().status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace nextmaint
