#include "common/date.h"

#include <gtest/gtest.h>

namespace nextmaint {
namespace {

TEST(DateTest, EpochIsDayZero) {
  const Date epoch;
  EXPECT_EQ(epoch.day_number(), 0);
  EXPECT_EQ(epoch.ToString(), "1970-01-01");
  EXPECT_EQ(epoch.weekday(), Weekday::kThursday);
}

TEST(DateTest, FromYmdRoundTrips) {
  const Date date = Date::FromYmd(2015, 1, 1).ValueOrDie();
  EXPECT_EQ(date.year(), 2015);
  EXPECT_EQ(date.month(), 1);
  EXPECT_EQ(date.day(), 1);
  EXPECT_EQ(date.ToString(), "2015-01-01");
}

TEST(DateTest, KnownDayNumbers) {
  EXPECT_EQ(Date::FromYmd(1970, 1, 2).ValueOrDie().day_number(), 1);
  EXPECT_EQ(Date::FromYmd(1969, 12, 31).ValueOrDie().day_number(), -1);
  // 2000-03-01 is a classic leap-year boundary check.
  EXPECT_EQ(Date::FromYmd(2000, 3, 1).ValueOrDie().day_number(), 11017);
}

TEST(DateTest, RejectsInvalidDates) {
  EXPECT_FALSE(Date::FromYmd(2020, 13, 1).ok());
  EXPECT_FALSE(Date::FromYmd(2020, 0, 1).ok());
  EXPECT_FALSE(Date::FromYmd(2020, 2, 30).ok());
  EXPECT_FALSE(Date::FromYmd(2019, 2, 29).ok());  // not a leap year
  EXPECT_TRUE(Date::FromYmd(2020, 2, 29).ok());   // leap year
  EXPECT_FALSE(Date::FromYmd(2020, 4, 31).ok());  // April has 30 days
}

TEST(DateTest, CenturyLeapRules) {
  EXPECT_TRUE(Date::FromYmd(2000, 2, 29).ok());   // divisible by 400
  EXPECT_FALSE(Date::FromYmd(1900, 2, 29).ok());  // divisible by 100 only
}

TEST(DateTest, ParseAcceptsIsoFormat) {
  const Date date = Date::Parse("2019-09-30").ValueOrDie();
  EXPECT_EQ(date.ToString(), "2019-09-30");
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Date::Parse("").ok());
  EXPECT_FALSE(Date::Parse("yesterday").ok());
  EXPECT_FALSE(Date::Parse("2019-13-01").ok());
  EXPECT_FALSE(Date::Parse("2019-02-30").ok());
}

TEST(DateTest, AddDaysCrossesMonthAndYear) {
  const Date date = Date::FromYmd(2015, 12, 31).ValueOrDie();
  EXPECT_EQ(date.AddDays(1).ToString(), "2016-01-01");
  EXPECT_EQ(date.AddDays(-31).ToString(), "2015-11-30");
  EXPECT_EQ(date.AddDays(366).ToString(), "2016-12-31");  // 2016 is leap
}

TEST(DateTest, DaysSinceIsSigned) {
  const Date a = Date::FromYmd(2015, 1, 1).ValueOrDie();
  const Date b = Date::FromYmd(2015, 3, 1).ValueOrDie();
  EXPECT_EQ(b.DaysSince(a), 59);
  EXPECT_EQ(a.DaysSince(b), -59);
  EXPECT_EQ(a.DaysSince(a), 0);
}

TEST(DateTest, WeekdayCycle) {
  // 2015-01-01 was a Thursday.
  Date date = Date::FromYmd(2015, 1, 1).ValueOrDie();
  EXPECT_EQ(date.weekday(), Weekday::kThursday);
  EXPECT_EQ(date.AddDays(1).weekday(), Weekday::kFriday);
  EXPECT_EQ(date.AddDays(2).weekday(), Weekday::kSaturday);
  EXPECT_EQ(date.AddDays(3).weekday(), Weekday::kSunday);
  EXPECT_EQ(date.AddDays(4).weekday(), Weekday::kMonday);
  EXPECT_EQ(date.AddDays(7).weekday(), Weekday::kThursday);
}

TEST(DateTest, IsWeekend) {
  const Date saturday = Date::FromYmd(2015, 1, 3).ValueOrDie();
  EXPECT_TRUE(saturday.IsWeekend());
  EXPECT_TRUE(saturday.AddDays(1).IsWeekend());    // Sunday
  EXPECT_FALSE(saturday.AddDays(2).IsWeekend());   // Monday
  EXPECT_FALSE(saturday.AddDays(-1).IsWeekend());  // Friday
}

TEST(DateTest, WeekdayBeforeEpochIsCorrect) {
  // 1969-12-31 was a Wednesday.
  EXPECT_EQ(Date::FromYmd(1969, 12, 31).ValueOrDie().weekday(),
            Weekday::kWednesday);
}

TEST(DateTest, DayOfYear) {
  EXPECT_EQ(Date::FromYmd(2015, 1, 1).ValueOrDie().DayOfYear(), 1);
  EXPECT_EQ(Date::FromYmd(2015, 12, 31).ValueOrDie().DayOfYear(), 365);
  EXPECT_EQ(Date::FromYmd(2016, 12, 31).ValueOrDie().DayOfYear(), 366);
  EXPECT_EQ(Date::FromYmd(2016, 3, 1).ValueOrDie().DayOfYear(), 61);
}

TEST(DateTest, ComparisonOperators) {
  const Date a = Date::FromYmd(2015, 5, 1).ValueOrDie();
  const Date b = Date::FromYmd(2015, 5, 2).ValueOrDie();
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, Date::FromYmd(2015, 5, 1).ValueOrDie());
  EXPECT_NE(a, b);
  EXPECT_LE(a, a);
}

TEST(DateTest, RoundTripOverFourYears) {
  // Every day of the study period round-trips through civil conversion.
  Date date = Date::FromYmd(2015, 1, 1).ValueOrDie();
  for (int i = 0; i < 1735; ++i) {
    const Date current = date.AddDays(i);
    const Date rebuilt =
        Date::FromYmd(current.year(), current.month(), current.day())
            .ValueOrDie();
    ASSERT_EQ(rebuilt.day_number(), current.day_number());
  }
}

}  // namespace
}  // namespace nextmaint
