#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace nextmaint {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  size_t equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.Uniform(-3.5, 12.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 12.25);
  }
}

TEST(RngTest, UniformIntCoversFullRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 100'000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.UniformInt(uint64_t{10})];
  }
  // Chi-squared-ish sanity: every bucket within 10% of expectation.
  for (int count : counts) {
    EXPECT_NEAR(count, draws / 10, draws / 100);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 1000 draws
}

TEST(RngTest, NormalMatchesMoments) {
  Rng rng(17);
  const int n = 200'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(19);
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(100.0, 5.0);
  EXPECT_NEAR(sum / n, 100.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(31);
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(0.25);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, PoissonSmallLambdaMean) {
  Rng rng(37);
  const int n = 100'000;
  int64_t sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(3.5);
  EXPECT_NEAR(static_cast<double>(sum) / n, 3.5, 0.05);
}

TEST(RngTest, PoissonLargeLambdaUsesNormalApprox) {
  Rng rng(41);
  const int n = 50'000;
  int64_t sum = 0;
  for (int i = 0; i < n; ++i) {
    const int64_t v = rng.Poisson(200.0);
    EXPECT_GE(v, 0);
    sum += v;
  }
  EXPECT_NEAR(static_cast<double>(sum) / n, 200.0, 1.0);
}

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(43);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, GammaMeanAndVariance) {
  Rng rng(47);
  const int n = 200'000;
  const double shape = 3.0, scale = 2.0;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gamma(shape, scale);
    EXPECT_GT(v, 0.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, shape * scale, 0.05);                      // 6.0
  EXPECT_NEAR(sum_sq / n - mean * mean, shape * scale * scale, 0.3);  // 12.0
}

TEST(RngTest, GammaShapeBelowOne) {
  Rng rng(53);
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gamma(0.5, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(59);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(61);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(67);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(71);
  Rng child = parent.Fork();
  // The child stream must differ from the parent's continuation.
  size_t equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2u);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(73), b(73);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
}

}  // namespace
}  // namespace nextmaint
