#include "common/statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nextmaint {
namespace {

TEST(MeanTest, BasicAndEmpty) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({5}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-2, 2}), 0.0);
}

TEST(VarianceTest, PopulationVariance) {
  EXPECT_DOUBLE_EQ(Variance({2, 2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1, 3}), 1.0);     // mean 2, deviations +-1
  EXPECT_DOUBLE_EQ(Variance({0, 0, 6}), 8.0);  // mean 2: 4+4+16 over 3
}

TEST(SampleStdDevTest, BesselCorrection) {
  EXPECT_DOUBLE_EQ(SampleStdDev({1, 3}), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(SampleStdDev({7}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({}), 0.0);
}

TEST(MinMaxTest, Basic) {
  EXPECT_DOUBLE_EQ(Min({3, -1, 2}), -1.0);
  EXPECT_DOUBLE_EQ(Max({3, -1, 2}), 3.0);
}

TEST(QuantileTest, InterpolatesLinearly) {
  const std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(Quantile({1, 2}, 0.5), 1.5);
}

TEST(QuantileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({5, 1, 3, 2, 4}, 0.5), 3.0);
}

TEST(MedianTest, EvenAndOdd) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
}

TEST(PearsonTest, PerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}).ValueOrDie(), 1.0,
              1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}).ValueOrDie(), -1.0,
              1e-12);
}

TEST(PearsonTest, IndependentIsNearZero) {
  // Orthogonal patterns.
  EXPECT_NEAR(PearsonCorrelation({1, -1, 1, -1}, {1, 1, -1, -1}).ValueOrDie(),
              0.0, 1e-12);
}

TEST(PearsonTest, ErrorCases) {
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1, 2, 3}).ok());
  EXPECT_FALSE(PearsonCorrelation({1}, {2}).ok());
  EXPECT_FALSE(PearsonCorrelation({2, 2, 2}, {1, 2, 3}).ok());  // constant
}

TEST(PointwiseAverageDistanceTest, Basic) {
  EXPECT_DOUBLE_EQ(PointwiseAverageDistance({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PointwiseAverageDistance({0, 0}, {3, 5}), 4.0);
}

TEST(PointwiseAverageDistanceTest, UsesCommonPrefix) {
  EXPECT_DOUBLE_EQ(PointwiseAverageDistance({1, 1, 1, 100}, {2, 2, 2}), 1.0);
  EXPECT_DOUBLE_EQ(PointwiseAverageDistance({}, {1, 2}), 0.0);
}

TEST(NormalizedEuclideanTest, Basic) {
  EXPECT_DOUBLE_EQ(NormalizedEuclideanDistance({0, 0}, {3, 4}),
                   std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(NormalizedEuclideanDistance({1, 2}, {1, 2}), 0.0);
}

TEST(RunningStatsTest, MatchesBatchStatistics) {
  const std::vector<double> values = {4.0, -2.0, 7.5, 0.0, 3.25};
  RunningStats stats;
  for (double v : values) stats.Add(v);
  EXPECT_EQ(stats.count(), values.size());
  EXPECT_NEAR(stats.mean(), Mean(values), 1e-12);
  EXPECT_NEAR(stats.variance(), Variance(values), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.5);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

}  // namespace
}  // namespace nextmaint
