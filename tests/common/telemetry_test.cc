#include "common/telemetry.h"

#include <cmath>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace nextmaint {
namespace telemetry {
namespace {

TEST(TelemetryKillSwitchTest, CompileTimeSwitchWinsOverSetEnabled) {
#ifdef NEXTMAINT_TELEMETRY_DISABLED
  SetEnabled(true);
  EXPECT_FALSE(Enabled());
  Count("test.counter.killed");
  EXPECT_EQ(Snapshot().counters.count("test.counter.killed"), 0u);
#else
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
#endif
}

/// Every test starts recording from a clean slate and leaves telemetry
/// disabled (the process default) so unrelated tests see zero overhead.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef NEXTMAINT_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out (NEXTMAINT_ENABLE_TELEMETRY=OFF)";
#endif
    SetEnabled(true);
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override {
    MetricsRegistry::Global().Reset();
    SetEnabled(false);
  }
};

TEST_F(TelemetryTest, CounterIncrementsAndResets) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.counter.a");
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);
  counter->Reset();
  EXPECT_EQ(counter->value(), 0u);
}

TEST_F(TelemetryTest, CounterLookupReturnsSameInstrument) {
  Counter* first = MetricsRegistry::Global().GetCounter("test.counter.b");
  Counter* second = MetricsRegistry::Global().GetCounter("test.counter.b");
  EXPECT_EQ(first, second);
}

TEST_F(TelemetryTest, PointersStayValidAcrossReset) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.counter.c");
  counter->Increment(7);
  MetricsRegistry::Global().Reset();
  // Reset zeroes the value but never deletes the instrument.
  EXPECT_EQ(counter->value(), 0u);
  counter->Increment(3);
  EXPECT_EQ(counter->value(), 3u);
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("test.counter.c"), counter);
}

TEST_F(TelemetryTest, GaugeSetAndAdd) {
  Gauge* gauge = MetricsRegistry::Global().GetGauge("test.gauge.a");
  gauge->Set(2.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.5);
  gauge->Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.5);
  gauge->Reset();
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
}

TEST_F(TelemetryTest, HistogramBucketsCountSumMinMax) {
  Histogram* histogram = MetricsRegistry::Global().GetHistogram(
      "test.hist.a", {1.0, 2.0, 4.0});
  histogram->Observe(0.5);  // bucket 0 (le 1)
  histogram->Observe(1.0);  // bucket 0 (le is inclusive)
  histogram->Observe(3.0);  // bucket 2 (le 4)
  histogram->Observe(9.0);  // overflow bucket
  EXPECT_EQ(histogram->count(), 4u);

  const MetricsSnapshot snapshot = Snapshot();
  const HistogramSnapshot& h = snapshot.histograms.at("test.hist.a");
  ASSERT_EQ(h.bucket_counts.size(), 4u);
  EXPECT_EQ(h.bucket_counts[0], 2u);
  EXPECT_EQ(h.bucket_counts[1], 0u);
  EXPECT_EQ(h.bucket_counts[2], 1u);
  EXPECT_EQ(h.bucket_counts[3], 1u);
  EXPECT_DOUBLE_EQ(h.sum, 13.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 9.0);
}

TEST_F(TelemetryTest, EmptyHistogramSnapshotsZeroMinMax) {
  MetricsRegistry::Global().GetHistogram("test.hist.empty", {1.0});
  const MetricsSnapshot snapshot = Snapshot();
  const HistogramSnapshot& h = snapshot.histograms.at("test.hist.empty");
  EXPECT_EQ(h.count, 0u);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 0.0);
}

TEST_F(TelemetryTest, HistogramBoundsFixedAtFirstRegistration) {
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("test.hist.b", {1.0, 2.0});
  Histogram* again =
      MetricsRegistry::Global().GetHistogram("test.hist.b", {5.0});
  EXPECT_EQ(histogram, again);
  EXPECT_EQ(again->bounds().size(), 2u);
}

TEST_F(TelemetryTest, DisabledInstrumentsAreNoOps) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.counter.d");
  Histogram* histogram =
      MetricsRegistry::Global().GetHistogram("test.hist.c", {1.0});
  Gauge* gauge = MetricsRegistry::Global().GetGauge("test.gauge.b");
  SetEnabled(false);
  counter->Increment();
  histogram->Observe(0.5);
  gauge->Set(3.0);
  { ScopedTimer timer(histogram); }
  { TraceSpan span("test.span.disabled"); }
  SetEnabled(true);
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_TRUE(Snapshot().spans.empty());
}

TEST_F(TelemetryTest, FreeHelpersSkipRegistrationWhileDisabled) {
  SetEnabled(false);
  Count("test.counter.never");
  Observe("test.hist.never", 1.0);
  SetGauge("test.gauge.never", 1.0);
  SetEnabled(true);
  const MetricsSnapshot snapshot = Snapshot();
  EXPECT_EQ(snapshot.counters.count("test.counter.never"), 0u);
  EXPECT_EQ(snapshot.histograms.count("test.hist.never"), 0u);
  EXPECT_EQ(snapshot.gauges.count("test.gauge.never"), 0u);
}

TEST_F(TelemetryTest, ScopedTimerRecordsOneObservation) {
  {
    ScopedTimer timer("test.timer.a");
  }
  const MetricsSnapshot snapshot = Snapshot();
  const HistogramSnapshot& h = snapshot.histograms.at("test.timer.a");
  EXPECT_EQ(h.count, 1u);
  EXPECT_GE(h.sum, 0.0);
}

TEST_F(TelemetryTest, TraceSpanRecordsParentChildTree) {
  {
    TraceSpan outer("test.span.outer");
    TraceSpan inner("test.span.inner");
  }
  const MetricsSnapshot snapshot = Snapshot();
  ASSERT_EQ(snapshot.spans.size(), 2u);
  // Spans close innermost-first.
  EXPECT_EQ(snapshot.spans[0].name, "test.span.inner");
  EXPECT_EQ(snapshot.spans[0].parent, "test.span.outer");
  EXPECT_EQ(snapshot.spans[1].name, "test.span.outer");
  EXPECT_EQ(snapshot.spans[1].parent, "");
  EXPECT_EQ(snapshot.histograms.at("test.span.inner.seconds").count, 1u);
  EXPECT_EQ(snapshot.histograms.at("test.span.outer.seconds").count, 1u);
}

TEST_F(TelemetryTest, ConcurrentUpdatesFromParallelForAreLossless) {
  constexpr size_t kIterations = 100'000;
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test.counter.parallel");
  Gauge* gauge = MetricsRegistry::Global().GetGauge("test.gauge.parallel");
  Histogram* histogram = MetricsRegistry::Global().GetHistogram(
      "test.hist.parallel", {0.25, 0.5, 0.75});
  const Status status = ParallelFor(
      0, kIterations, /*grain=*/1024,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          counter->Increment();
          gauge->Add(1.0);
          histogram->Observe(static_cast<double>(i % 4) / 4.0);
        }
        return Status::OK();
      },
      /*num_threads=*/4);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(counter->value(), kIterations);
  EXPECT_DOUBLE_EQ(gauge->value(), static_cast<double>(kIterations));
  const MetricsSnapshot snapshot = Snapshot();
  const HistogramSnapshot& h = snapshot.histograms.at("test.hist.parallel");
  EXPECT_EQ(h.count, kIterations);
  // i % 4 yields values {0, 0.25, 0.5, 0.75}; with le-inclusive bounds
  // {0.25, 0.5, 0.75} the first bucket absorbs both 0 and 0.25.
  ASSERT_EQ(h.bucket_counts.size(), 4u);
  EXPECT_EQ(h.bucket_counts[0], kIterations / 2);
  EXPECT_EQ(h.bucket_counts[1], kIterations / 4);
  EXPECT_EQ(h.bucket_counts[2], kIterations / 4);
  EXPECT_EQ(h.bucket_counts[3], 0u);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 0.75);
}

TEST_F(TelemetryTest, SnapshotDeltaIsolatesOneRun) {
  Count("test.counter.delta", 5);
  Observe("test.hist.delta", 1.0);
  const MetricsSnapshot before = Snapshot();
  Count("test.counter.delta", 2);
  Observe("test.hist.delta", 3.0);
  { TraceSpan span("test.span.delta"); }
  const MetricsSnapshot delta = SnapshotDelta(before, Snapshot());
  EXPECT_EQ(delta.counters.at("test.counter.delta"), 2u);
  EXPECT_EQ(delta.histograms.at("test.hist.delta").count, 1u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("test.hist.delta").sum, 3.0);
  ASSERT_EQ(delta.spans.size(), 1u);
  EXPECT_EQ(delta.spans[0].name, "test.span.delta");
}

TEST_F(TelemetryTest, RenderTextListsInstruments) {
  Count("test.counter.text", 3);
  SetGauge("test.gauge.text", 1.5);
  Observe("test.hist.text", 2.0);
  const std::string text = RenderText(Snapshot());
  EXPECT_NE(text.find("test.counter.text = 3"), std::string::npos);
  EXPECT_NE(text.find("test.gauge.text = 1.5"), std::string::npos);
  EXPECT_NE(text.find("test.hist.text count=1"), std::string::npos);
}

TEST_F(TelemetryTest, RenderJsonHasStableTopLevelKeys) {
  Count("test.counter.json");
  Observe("test.hist.json", 0.01);
  { TraceSpan span("test.span.json"); }
  const std::string json = RenderJson(Snapshot());
  EXPECT_NE(json.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"test.counter.json\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+inf\""), std::string::npos);
}

TEST_F(TelemetryTest, RenderJsonEscapesAndHandlesNonFinite) {
  Count("test.counter.\"quoted\"\\name");
  SetGauge("test.gauge.nan", std::nan(""));
  const std::string json = RenderJson(Snapshot());
  EXPECT_NE(json.find("\"test.counter.\\\"quoted\\\"\\\\name\""),
            std::string::npos);
  EXPECT_NE(json.find("\"test.gauge.nan\": null"), std::string::npos);
}

TEST_F(TelemetryTest, WriteJsonFileRoundTrips) {
  Count("test.counter.file", 9);
  const std::string path =
      ::testing::TempDir() + "/telemetry_test_metrics.json";
  ASSERT_TRUE(WriteJsonFile(Snapshot(), path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"test.counter.file\": 9"), std::string::npos);
}

TEST_F(TelemetryTest, WriteJsonFileFailsOnBadPath) {
  const Status status =
      WriteJsonFile(Snapshot(), "/nonexistent-dir/metrics.json");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace telemetry
}  // namespace nextmaint
