#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nextmaint {
namespace {

TEST(ThreadPoolTest, StartsLazily) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  EXPECT_FALSE(pool.started());

  std::atomic<int> calls{0};
  ASSERT_TRUE(pool.ParallelFor(0, 8, 1,
                               [&](size_t, size_t) {
                                 ++calls;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(calls.load(), 8);
  EXPECT_TRUE(pool.started());
}

TEST(ThreadPoolTest, SingleThreadPoolNeverSpawnsWorkers) {
  ThreadPool pool(1);
  std::atomic<int> calls{0};
  ASSERT_TRUE(pool.ParallelFor(0, 5, 1,
                               [&](size_t, size_t) {
                                 ++calls;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(calls.load(), 5);
  // The serial fallback must not pay for threads.
  EXPECT_FALSE(pool.started());
}

TEST(ThreadPoolTest, NonPositiveThreadCountSelectsHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  ASSERT_TRUE(pool.ParallelFor(3, 3, 1,
                               [&](size_t, size_t) {
                                 ++calls;
                                 return Status::OK();
                               })
                  .ok());
  ASSERT_TRUE(pool.ParallelFor(7, 2, 1,
                               [&](size_t, size_t) {
                                 ++calls;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(calls.load(), 0);
  EXPECT_FALSE(pool.started());
}

TEST(ThreadPoolTest, GrainLargerThanRangeMakesOneInlineChunk) {
  ThreadPool pool(4);
  std::vector<std::pair<size_t, size_t>> chunks;
  ASSERT_TRUE(pool.ParallelFor(2, 9, 100,
                               [&](size_t begin, size_t end) {
                                 chunks.emplace_back(begin, end);
                                 return Status::OK();
                               })
                  .ok());
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], std::make_pair(size_t{2}, size_t{9}));
  // A single chunk runs on the calling thread without waking the pool.
  EXPECT_FALSE(pool.started());
}

TEST(ThreadPoolTest, ZeroGrainIsTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ASSERT_TRUE(pool.ParallelFor(0, 4, 0,
                               [&](size_t begin, size_t end) {
                                 EXPECT_EQ(end, begin + 1);
                                 ++calls;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(calls.load(), 4);
}

TEST(ThreadPoolTest, ChunkBoundariesCoverTheRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kBegin = 5, kEnd = 218, kGrain = 16;
  std::vector<std::atomic<int>> hits(kEnd);
  for (auto& h : hits) h.store(0);
  ASSERT_TRUE(pool.ParallelFor(kBegin, kEnd, kGrain,
                               [&](size_t begin, size_t end) {
                                 EXPECT_LE(end - begin, kGrain);
                                 for (size_t i = begin; i < end; ++i) {
                                   ++hits[i];
                                 }
                                 return Status::OK();
                               })
                  .ok());
  for (size_t i = 0; i < kEnd; ++i) {
    EXPECT_EQ(hits[i].load(), i >= kBegin ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    ASSERT_TRUE(pool.ParallelFor(0, 97, 5,
                                 [&](size_t begin, size_t end) {
                                   int64_t local = 0;
                                   for (size_t i = begin; i < end; ++i) {
                                     local += static_cast<int64_t>(i);
                                   }
                                   sum += local;
                                   return Status::OK();
                                 })
                    .ok());
    EXPECT_EQ(sum.load(), 97 * 96 / 2);
  }
}

TEST(ThreadPoolTest, StatusFromMidRangeWorkerPropagates) {
  ThreadPool pool(4);
  const Status status = pool.ParallelFor(0, 32, 1, [&](size_t begin, size_t) {
    if (begin == 17) {
      return Status::DataError("chunk 17 exploded");
    }
    return Status::OK();
  });
  EXPECT_EQ(status.code(), StatusCode::kDataError);
  EXPECT_EQ(status.message(), "chunk 17 exploded");
}

TEST(ThreadPoolTest, LowestIndexedFailureWinsDeterministically) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    const Status status =
        pool.ParallelFor(0, 32, 1, [&](size_t begin, size_t) {
          if (begin == 9 || begin == 23) {
            return Status::InvalidArgument("chunk " + std::to_string(begin));
          }
          return Status::OK();
        });
    // Both chunks fail; the report matches a serial left-to-right loop.
    EXPECT_EQ(status.message(), "chunk 9");
  }
}

TEST(ThreadPoolTest, ErrorDoesNotPoisonThePool) {
  ThreadPool pool(4);
  EXPECT_FALSE(pool.ParallelFor(0, 8, 1, [&](size_t, size_t) {
                     return Status::Unknown("boom");
                   })
                   .ok());
  std::atomic<int> calls{0};
  EXPECT_TRUE(pool.ParallelFor(0, 8, 1,
                               [&](size_t, size_t) {
                                 ++calls;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPoolTest, ExceptionFromWorkerRethrowsOnCaller) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  EXPECT_THROW(
      {
        (void)pool.ParallelFor(0, 16, 1, [&](size_t begin, size_t) -> Status {
          ++calls;
          if (begin == 11) throw std::runtime_error("worker threw");
          return Status::OK();
        });
      },
      std::runtime_error);
  // No early exit: every chunk still ran.
  EXPECT_EQ(calls.load(), 16);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  std::atomic<int> inner_on_same_thread{0};
  ASSERT_TRUE(
      pool.ParallelFor(0, 8, 1,
                       [&](size_t, size_t) {
                         const std::thread::id outer = std::this_thread::get_id();
                         return pool.ParallelFor(
                             0, 4, 1, [&, outer](size_t, size_t) {
                               ++inner_calls;
                               if (std::this_thread::get_id() == outer) {
                                 ++inner_on_same_thread;
                               }
                               return Status::OK();
                             });
                       })
          .ok());
  EXPECT_EQ(inner_calls.load(), 8 * 4);
  // Inline fallback: every inner chunk ran on its outer chunk's thread.
  EXPECT_EQ(inner_on_same_thread.load(), 8 * 4);
}

TEST(ThreadPoolTest, MaxParallelismCapsConcurrentLanes) {
  ThreadPool pool(8);
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  ASSERT_TRUE(pool.ParallelFor(
                      0, 64, 1,
                      [&](size_t, size_t) {
                        const int now = ++in_flight;
                        int expected = peak.load();
                        while (now > expected &&
                               !peak.compare_exchange_weak(expected, now)) {
                        }
                        std::this_thread::yield();
                        --in_flight;
                        return Status::OK();
                      },
                      /*max_parallelism=*/2)
                  .ok());
  EXPECT_LE(peak.load(), 2);
}

TEST(ThreadPoolTest, ConcurrentCallersShareTheWorkers) {
  ThreadPool pool(4);
  std::vector<std::thread> callers;
  std::vector<int64_t> sums(4, 0);
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      int64_t local = 0;
      std::mutex mu;
      ASSERT_TRUE(pool.ParallelFor(0, 1000, 7,
                                   [&](size_t begin, size_t end) {
                                     int64_t chunk = 0;
                                     for (size_t i = begin; i < end; ++i) {
                                       chunk += static_cast<int64_t>(i);
                                     }
                                     std::lock_guard<std::mutex> lock(mu);
                                     local += chunk;
                                     return Status::OK();
                                   })
                      .ok());
      sums[static_cast<size_t>(c)] = local;
    });
  }
  for (std::thread& t : callers) t.join();
  for (int64_t sum : sums) EXPECT_EQ(sum, 1000 * 999 / 2);
}

TEST(DefaultPoolTest, FreeParallelForHonoursExplicitThreadCount) {
  std::atomic<int> calls{0};
  ASSERT_TRUE(ParallelFor(
                  0, 10, 1,
                  [&](size_t, size_t) {
                    ++calls;
                    return Status::OK();
                  },
                  /*num_threads=*/4)
                  .ok());
  EXPECT_EQ(calls.load(), 10);
}

TEST(DefaultPoolTest, SetDefaultThreadCountIsObserved) {
  ThreadPool::SetDefaultThreadCount(3);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  EXPECT_EQ(ResolveThreadCount(0), 3);
  EXPECT_EQ(ResolveThreadCount(-5), 3);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_EQ(ThreadPool::Default().thread_count(), 3);

  ThreadPool::SetDefaultThreadCount(0);  // restore: hardware concurrency
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace nextmaint
