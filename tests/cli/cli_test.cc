#include "cli/cli.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoints.h"
#include "serve/client.h"
#include "storage/checkpoint_store.h"

namespace nextmaint {
namespace cli {
namespace {

namespace fs = std::filesystem;

TEST(ParseArgsTest, FlagForms) {
  const ParsedArgs args = ParseArgs(
      {"simulate", "--out", "/tmp/x", "--days=42", "--weather", "--seed",
       "7", "extra"});
  EXPECT_EQ(args.positional, (std::vector<std::string>{"simulate", "extra"}));
  EXPECT_EQ(args.FlagOr("out", ""), "/tmp/x");
  EXPECT_EQ(args.FlagOr("days", ""), "42");
  EXPECT_TRUE(args.HasFlag("weather"));
  EXPECT_EQ(args.flags.at("weather"), "");
  EXPECT_EQ(args.FlagOr("seed", ""), "7");
  EXPECT_FALSE(args.HasFlag("absent"));
  EXPECT_EQ(args.FlagOr("absent", "fallback"), "fallback");
}

TEST(ParseArgsTest, SwitchFollowedByFlag) {
  const ParsedArgs args = ParseArgs({"--weather", "--out", "dir"});
  EXPECT_EQ(args.flags.at("weather"), "");
  EXPECT_EQ(args.flags.at("out"), "dir");
}

TEST(ParseArgsTest, TypedFlagAccessors) {
  const ParsedArgs args = ParseArgs({"--n", "5", "--x", "2.5", "--bad", "z"});
  EXPECT_EQ(args.IntFlagOr("n", 0).ValueOrDie(), 5);
  EXPECT_EQ(args.IntFlagOr("missing", 9).ValueOrDie(), 9);
  EXPECT_DOUBLE_EQ(args.DoubleFlagOr("x", 0.0).ValueOrDie(), 2.5);
  EXPECT_FALSE(args.IntFlagOr("bad", 0).ok());
  EXPECT_FALSE(args.DoubleFlagOr("bad", 0.0).ok());
}

TEST(RunCommandTest, MissingOrUnknownCommand) {
  std::ostringstream out;
  EXPECT_EQ(RunCommand({}, out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(RunCommand({"teleport"}, out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_NE(RunCommand({"teleport"}, out).message().find("usage"),
            std::string::npos);
}

TEST(RunCommandTest, CommandsValidateRequiredFlags) {
  std::ostringstream out;
  EXPECT_FALSE(RunCommand({"simulate"}, out).ok());
  EXPECT_FALSE(RunCommand({"forecast"}, out).ok());
  EXPECT_FALSE(RunCommand({"plan"}, out).ok());
  EXPECT_FALSE(RunCommand({"evaluate"}, out).ok());
  EXPECT_FALSE(RunCommand({"serve"}, out).ok());
}

TEST(ParseCommonOptionsTest, DefaultsAndHappyPath) {
  const CommonOptions defaults =
      ParseCommonOptions(ParseArgs({"forecast"})).ValueOrDie();
  EXPECT_EQ(defaults.threads, 0);
  EXPECT_FALSE(defaults.strict);
  EXPECT_TRUE(defaults.metrics_json.empty());
  EXPECT_TRUE(defaults.failpoints.empty());
  EXPECT_TRUE(defaults.load_models.empty());
  EXPECT_FALSE(defaults.warm_start);

  const CommonOptions parsed =
      ParseCommonOptions(ParseArgs({"forecast", "--threads", "4", "--strict",
                                    "--metrics-json", "m.json",
                                    "--load-models", "ckpt.txt",
                                    "--warm-start"}))
          .ValueOrDie();
  EXPECT_EQ(parsed.threads, 4);
  EXPECT_TRUE(parsed.strict);
  EXPECT_EQ(parsed.metrics_json, "m.json");
  EXPECT_EQ(parsed.load_models, "ckpt.txt");
  EXPECT_TRUE(parsed.warm_start);
}

TEST(ParseCommonOptionsTest, RejectsMalformedValues) {
  // One validation path for every command: bad shared flags fail the same
  // way no matter which command carries them.
  for (const auto& bad : std::vector<std::vector<std::string>>{
           {"--threads", "abc"},
           {"--threads", "-3"},
           {"--metrics-json"},
           {"--load-models"}}) {
    const auto result = ParseCommonOptions(ParseArgs(bad));
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << bad.front();
    EXPECT_NE(result.status().message().find("usage"), std::string::npos)
        << bad.front();
  }
}

TEST(ParseCommonOptionsTest, FailpointsSpecRequiresValue) {
  if (!failpoints::CompiledIn()) {
    const auto result =
        ParseCommonOptions(ParseArgs({"--failpoints", "serve.refresh"}));
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    return;
  }
  EXPECT_EQ(ParseCommonOptions(ParseArgs({"--failpoints"})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseCommonOptions(ParseArgs({"--failpoints", "serve.refresh"}))
                .ValueOrDie()
                .failpoints,
            "serve.refresh");
}

class CliPipelineTest : public testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs suite members as concurrent processes
    // and a shared directory would race SetUp's remove_all.
    dir_ = fs::path(testing::TempDir()) /
           (std::string("nextmaint_cli_test_") +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  fs::path dir_;
};

TEST_F(CliPipelineTest, SimulateWritesFleetCsvs) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "3",
                          "--days", "400", "--tv", "500000"},
                         out)
                  .ok());
  EXPECT_NE(out.str().find("wrote 3 vehicle series"), std::string::npos);
  EXPECT_TRUE(fs::exists(dir_ / "v1.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "v3.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "fleet.csv"));

  // The per-vehicle CSV has the documented schema.
  std::ifstream file(dir_ / "v1.csv");
  std::string header;
  std::getline(file, header);
  EXPECT_EQ(header, "date,utilization_s");
}

TEST_F(CliPipelineTest, SimulateForecastRoundTrip) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "3",
                          "--days", "600", "--tv", "500000"},
                         out)
                  .ok());
  std::ostringstream forecast_out;
  ASSERT_TRUE(RunCommand({"forecast", "--data", Dir(), "--tv", "500000",
                          "--window", "3"},
                         forecast_out)
                  .ok());
  const std::string text = forecast_out.str();
  EXPECT_NE(text.find("v1"), std::string::npos);
  EXPECT_NE(text.find("v3"), std::string::npos);
  EXPECT_NE(text.find("old"), std::string::npos);
}

TEST_F(CliPipelineTest, ForecastSavesModels) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "2",
                          "--days", "600", "--tv", "500000"},
                         out)
                  .ok());
  const std::string model_path = (dir_ / "models.ckpt").string();
  std::ostringstream forecast_out;
  ASSERT_TRUE(RunCommand({"forecast", "--data", Dir(), "--tv", "500000",
                          "--window", "3", "--save-models", model_path},
                         forecast_out)
                  .ok());
  // Checkpoints are written in the segmented mmap format.
  EXPECT_EQ(storage::SniffCheckpointFormat(model_path).ValueOrDie(),
            storage::CheckpointFormat::kSegmented);
}

TEST_F(CliPipelineTest, CompactedCorpusForecastsIdenticallyToCsvs) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "3",
                          "--days", "600", "--tv", "500000"},
                         out)
                  .ok());
  std::ostringstream csv_out;
  ASSERT_TRUE(RunCommand({"forecast", "--data", Dir(), "--tv", "500000",
                          "--window", "3"},
                         csv_out)
                  .ok());

  const std::string corpus_path = (dir_ / "fleet.nmc").string();
  std::ostringstream compact_out;
  ASSERT_TRUE(RunCommand({"compact", "--data", Dir(), "--out", corpus_path,
                          "--tv", "500000"},
                         compact_out)
                  .ok());
  EXPECT_NE(compact_out.str().find("compacted 3 vehicle(s)"),
            std::string::npos);

  // `--data FILE` routes through the corpus reader and must reproduce the
  // CSV-path forecasts byte for byte (f64 columns round-trip exactly).
  std::ostringstream corpus_out;
  ASSERT_TRUE(RunCommand({"forecast", "--data", corpus_path, "--tv", "500000",
                          "--window", "3"},
                         corpus_out)
                  .ok());
  EXPECT_EQ(corpus_out.str(), csv_out.str());
}

TEST_F(CliPipelineTest, CompactValidatesItsFlags) {
  std::ostringstream out;
  EXPECT_EQ(RunCommand({"compact", "--data", Dir()}, out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunCommand({"compact", "--out", Dir() + "/x.nmc"}, out).code(),
            StatusCode::kInvalidArgument);
  // A regular file that is not a corpus cannot serve as --data.
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "1",
                          "--days", "400", "--tv", "500000"},
                         out)
                  .ok());
  std::ostringstream forecast_out;
  EXPECT_EQ(RunCommand({"forecast", "--data", (dir_ / "v1.csv").string(),
                        "--tv", "500000"},
                       forecast_out)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CliPipelineTest, PlanBooksEveryVehicle) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "3",
                          "--days", "600", "--tv", "500000"},
                         out)
                  .ok());
  std::ostringstream plan_out;
  ASSERT_TRUE(RunCommand({"plan", "--data", Dir(), "--tv", "500000",
                          "--window", "3", "--capacity", "2", "--horizon",
                          "120", "--weekends"},
                         plan_out)
                  .ok());
  EXPECT_NE(plan_out.str().find("workshop plan"), std::string::npos);
  EXPECT_NE(plan_out.str().find("total cost"), std::string::npos);
}

TEST_F(CliPipelineTest, EvaluateComparesAlgorithms) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "1",
                          "--days", "600", "--tv", "500000"},
                         out)
                  .ok());
  std::ostringstream eval_out;
  ASSERT_TRUE(RunCommand({"evaluate", "--data", Dir(), "--tv", "500000",
                          "--window", "3", "--last29"},
                         eval_out)
                  .ok());
  for (const char* algorithm : {"BL", "LR", "LSVR", "RF", "XGB"}) {
    EXPECT_NE(eval_out.str().find(algorithm), std::string::npos);
  }
}

TEST_F(CliPipelineTest, ForecastOnMissingDirectoryFails) {
  std::ostringstream out;
  EXPECT_EQ(RunCommand({"forecast", "--data", Dir() + "/nope"}, out).code(),
            StatusCode::kNotFound);
}

TEST_F(CliPipelineTest, CorruptCsvSurfacesDataError) {
  // With every vehicle corrupt there is nothing to degrade to: the error
  // surfaces even in the default (non-strict) mode.
  fs::create_directories(dir_);
  std::ofstream bad(dir_ / "vbad.csv");
  bad << "date,utilization_s\n2015-01-01,10,EXTRA\n";
  bad.close();
  std::ostringstream out;
  const Status status = RunCommand({"forecast", "--data", Dir()}, out);
  EXPECT_EQ(status.code(), StatusCode::kDataError);
}

TEST_F(CliPipelineTest, CorruptVehicleSkippedUnlessStrict) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "2",
                          "--days", "600", "--tv", "500000"},
                         out)
                  .ok());
  std::ofstream bad(dir_ / "vbad.csv");
  bad << "date,utilization_s\n2015-01-01,10,EXTRA\n";
  bad.close();

  // Default mode: the corrupt vehicle is skipped (and reported), the two
  // healthy vehicles are still forecast.
  std::ostringstream degraded_out;
  ASSERT_TRUE(RunCommand({"forecast", "--data", Dir(), "--tv", "500000",
                          "--window", "3"},
                         degraded_out)
                  .ok());
  const std::string text = degraded_out.str();
  EXPECT_NE(text.find("skipped vehicle vbad"), std::string::npos) << text;
  EXPECT_NE(text.find("v1"), std::string::npos);
  EXPECT_NE(text.find("v2"), std::string::npos);

  // --strict restores fail-fast on the same fleet.
  std::ostringstream strict_out;
  const Status strict_status =
      RunCommand({"forecast", "--data", Dir(), "--tv", "500000", "--window",
                  "3", "--strict"},
                 strict_out);
  EXPECT_EQ(strict_status.code(), StatusCode::kDataError);
}

TEST_F(CliPipelineTest, MalformedThreadsFlagRejectedWithUsage) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "1",
                          "--days", "600", "--tv", "500000"},
                         out)
                  .ok());
  for (const char* bad_value : {"abc", "-3", "2.5", ""}) {
    std::ostringstream forecast_out;
    const Status status =
        RunCommand({"forecast", "--data", Dir(), "--tv", "500000",
                    "--threads", bad_value},
                   forecast_out);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << bad_value;
    EXPECT_NE(status.message().find("--threads expects a non-negative"),
              std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("usage"), std::string::npos);
  }
}

TEST_F(CliPipelineTest, MetricsJsonFlagWritesParsableReport) {
#ifdef NEXTMAINT_TELEMETRY_DISABLED
  GTEST_SKIP() << "telemetry compiled out (NEXTMAINT_ENABLE_TELEMETRY=OFF)";
#endif
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "2",
                          "--days", "600", "--tv", "500000"},
                         out)
                  .ok());
  const std::string metrics_path = (dir_ / "metrics.json").string();
  std::ostringstream forecast_out;
  ASSERT_TRUE(RunCommand({"forecast", "--data", Dir(), "--tv", "500000",
                          "--window", "3", "--metrics-json", metrics_path},
                         forecast_out)
                  .ok());
  EXPECT_NE(forecast_out.str().find("metrics written to"), std::string::npos);

  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string json = contents.str();
  // The stable report surface: phase timings and fleet-shape gauges.
  EXPECT_NE(json.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler.train.seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler.forecast.seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler.fleet.vehicles.old\""), std::string::npos);
  EXPECT_NE(json.find("\"data.csv.rows_parsed\""), std::string::npos);

  // A bare --metrics-json with no path is rejected up front.
  std::ostringstream bare_out;
  EXPECT_EQ(RunCommand({"forecast", "--data", Dir(), "--metrics-json"},
                       bare_out)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CliPipelineTest, ForecastLoadsSavedModels) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "2",
                          "--days", "600", "--tv", "500000"},
                         out)
                  .ok());
  const std::string model_path = (dir_ / "models.txt").string();
  std::ostringstream train_out;
  ASSERT_TRUE(RunCommand({"forecast", "--data", Dir(), "--tv", "500000",
                          "--window", "3", "--save-models", model_path},
                         train_out)
                  .ok());
  std::ostringstream load_out;
  ASSERT_TRUE(RunCommand({"forecast", "--data", Dir(), "--tv", "500000",
                          "--window", "3", "--load-models", model_path},
                         load_out)
                  .ok());
  // Skipping training must not change the forecast table (the training run
  // only appends its "models saved to" confirmation).
  EXPECT_EQ(train_out.str(),
            load_out.str() + "models saved to " + model_path + "\n");

  std::ostringstream missing_out;
  EXPECT_EQ(RunCommand({"forecast", "--data", Dir(), "--tv", "500000",
                        "--window", "3", "--load-models",
                        (dir_ / "nope.txt").string()},
                       missing_out)
                .code(),
            StatusCode::kIOError);
}

TEST_F(CliPipelineTest, ServeReplayMatchesBatchForecast) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "3",
                          "--days", "600", "--tv", "500000"},
                         out)
                  .ok());
  std::ostringstream batch_out;
  ASSERT_TRUE(RunCommand({"forecast", "--data", Dir(), "--tv", "500000",
                          "--window", "3"},
                         batch_out)
                  .ok());
  std::ostringstream serve_out;
  ASSERT_TRUE(RunCommand({"serve", "--data", Dir(), "--tv", "500000",
                          "--window", "3", "--replay-days", "7",
                          "--refresh-every", "2"},
                         serve_out)
                  .ok());
  const std::string text = serve_out.str();
  // The replay narrates its refreshes and ends on the snapshot.
  EXPECT_NE(text.find("refresh epoch 1:"), std::string::npos) << text;
  EXPECT_NE(text.find("fleet snapshot at epoch"), std::string::npos);
  // Bit-identity through the CLI: the final snapshot table is byte-equal
  // to the batch forecast over the same data.
  EXPECT_NE(text.find(batch_out.str()), std::string::npos)
      << "serve table diverged from batch forecast\n"
      << text << "\n---\n" << batch_out.str();
}

TEST_F(CliPipelineTest, ServeWarmStartReplayRuns) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "3",
                          "--days", "600", "--tv", "500000"},
                         out)
                  .ok());
  std::ostringstream serve_out;
  ASSERT_TRUE(RunCommand({"serve", "--data", Dir(), "--tv", "500000",
                          "--window", "3", "--replay-days", "7",
                          "--refresh-every", "2", "--warm-start"},
                         serve_out)
                  .ok());
  const std::string text = serve_out.str();
  // The warm replay still narrates its refreshes and ends on the snapshot;
  // resumed refreshes are narrated as "N warm".
  EXPECT_NE(text.find("refresh epoch 1:"), std::string::npos) << text;
  EXPECT_NE(text.find("fleet snapshot at epoch"), std::string::npos);
  EXPECT_NE(text.find(" warm"), std::string::npos)
      << "no refresh reported a warm-start resume\n" << text;
}

TEST_F(CliPipelineTest, ServeValidatesFlags) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "1",
                          "--days", "600", "--tv", "500000"},
                         out)
                  .ok());
  std::ostringstream serve_out;
  // serve trains incrementally; checkpoints cannot seed it.
  EXPECT_EQ(RunCommand({"serve", "--data", Dir(), "--load-models", "x.txt"},
                       serve_out)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunCommand({"serve", "--data", Dir(), "--replay-days", "0"},
                       serve_out)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunCommand({"serve", "--data", Dir(), "--refresh-every", "-1"},
                       serve_out)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ParseCommonOptionsTest, DaemonFlagsHappyPath) {
  const CommonOptions defaults =
      ParseCommonOptions(ParseArgs({"serve"})).ValueOrDie();
  EXPECT_FALSE(defaults.daemon);
  EXPECT_EQ(defaults.shards, 1);
  EXPECT_EQ(defaults.port, -1);
  EXPECT_TRUE(defaults.socket_path.empty());
  EXPECT_EQ(defaults.max_queue, 1024);
  EXPECT_EQ(defaults.batch_window, 0);

  const CommonOptions tcp =
      ParseCommonOptions(ParseArgs({"serve", "--daemon", "--shards", "4",
                                    "--port", "9090", "--max-queue", "64",
                                    "--batch-window", "10"}))
          .ValueOrDie();
  EXPECT_TRUE(tcp.daemon);
  EXPECT_EQ(tcp.shards, 4);
  EXPECT_EQ(tcp.port, 9090);
  EXPECT_EQ(tcp.max_queue, 64);
  EXPECT_EQ(tcp.batch_window, 10);

  const CommonOptions unix_socket =
      ParseCommonOptions(
          ParseArgs({"serve", "--daemon", "--socket", "/tmp/d.sock"}))
          .ValueOrDie();
  EXPECT_EQ(unix_socket.socket_path, "/tmp/d.sock");
  EXPECT_EQ(unix_socket.port, -1);
}

TEST(ParseCommonOptionsTest, DaemonFlagErrorCodesPinned) {
  // The daemon flags ride the same single validation path as every other
  // shared flag: InvalidArgument with the usage text, for each of them.
  for (const auto& bad : std::vector<std::vector<std::string>>{
           {"--shards", "0"},
           {"--shards", "-2"},
           {"--shards", "abc"},
           {"--max-queue", "0"},
           {"--max-queue", "x"},
           {"--batch-window", "-1"},
           {"--port", "0"},
           {"--port", "70000"},
           {"--port", "nope"},
           {"--socket"},
           {"--socket", "/tmp/d.sock", "--port", "9090"}}) {
    const auto result = ParseCommonOptions(ParseArgs(bad));
    ASSERT_FALSE(result.ok()) << bad.front();
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << bad.front();
    EXPECT_NE(result.status().message().find("usage"), std::string::npos)
        << bad.front();
  }
}

TEST_F(CliPipelineTest, ServeDaemonRequiresAnEndpoint) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "1",
                          "--days", "100", "--tv", "500000"},
                         out)
                  .ok());
  std::ostringstream serve_out;
  const Status status =
      RunCommand({"serve", "--daemon", "--data", Dir()}, serve_out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--socket"), std::string::npos);

  // And conversely: the endpoint flags are daemon-only.
  std::ostringstream replay_out;
  EXPECT_EQ(RunCommand({"serve", "--data", Dir(), "--port", "9090"},
                       replay_out)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CliPipelineTest, ServeDaemonEndToEndOverUnixSocket) {
  std::ostringstream out;
  ASSERT_TRUE(RunCommand({"simulate", "--out", Dir(), "--vehicles", "3",
                          "--days", "300", "--tv", "500000"},
                         out)
                  .ok());
  // A short socket path: sockaddr_un caps at ~108 bytes and TempDir-based
  // test names can get long.
  const std::string socket_path =
      "/tmp/nextmaint_cli_e2e_" + std::to_string(::getpid()) + ".sock";

  std::ostringstream daemon_out;
  Status daemon_status;
  std::thread daemon_thread([&]() {
    daemon_status = RunCommand(
        {"serve", "--daemon", "--data", Dir(), "--tv", "500000", "--window",
         "3", "--socket", socket_path, "--shards", "2"},
        daemon_out);
  });

  // The daemon trains the warm-start fleet before binding; poll until the
  // socket accepts.
  serve::DaemonClient client;
  Status connected;
  for (int attempt = 0; attempt < 600; ++attempt) {
    connected = client.ConnectUnix(socket_path);
    if (connected.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(connected.ok()) << connected;

  // The warm-started fleet is already readable.
  const auto warm = client.GetForecasts({"v1", "v2", "v3"});
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_EQ(warm.ValueOrDie().entries.size(), 3u);
  for (const auto& entry : warm.ValueOrDie().entries) {
    EXPECT_EQ(entry.status_code, StatusCode::kOk) << entry.vehicle_id;
  }

  // Live traffic: a new vehicle appears, gets data, and is served after
  // the next refresh barrier.
  const Date day0 = Date::FromYmd(2016, 1, 1).ValueOrDie();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(client.Append("live", day0.AddDays(i), 15'000.0).ok());
  }
  const auto refreshed = client.Refresh();
  ASSERT_TRUE(refreshed.ok()) << refreshed.status();
  EXPECT_EQ(refreshed.ValueOrDie().shards, 2u);
  const auto live = client.GetForecasts({"live"});
  ASSERT_TRUE(live.ok()) << live.status();
  ASSERT_EQ(live.ValueOrDie().entries.size(), 1u);
  EXPECT_EQ(live.ValueOrDie().entries[0].status_code, StatusCode::kOk);

  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats.ValueOrDie().appends, 40u);
  EXPECT_EQ(stats.ValueOrDie().shards.size(), 2u);

  ASSERT_TRUE(client.RequestShutdown().ok());
  daemon_thread.join();
  client.Close();
  EXPECT_TRUE(daemon_status.ok()) << daemon_status;
  const std::string text = daemon_out.str();
  EXPECT_NE(text.find("daemon serving 3 vehicle(s)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("daemon stopped:"), std::string::npos) << text;
  EXPECT_FALSE(fs::exists(socket_path));
}

}  // namespace
}  // namespace cli
}  // namespace nextmaint
