// New-vehicle onboarding: the cold-start scenario of Section 4.4.
//
// A dealer adds a machine to the monitored fleet. At first there is no
// usage history at all (category "new"), so only the unified cross-vehicle
// model can predict its next maintenance. As telemetry accumulates past
// half a maintenance cycle it becomes "semi-new" and the similarity-based
// model takes over; after the first service it is "old" and gets its own
// per-vehicle model. This example walks one vehicle through all three
// stages and shows how the prediction machinery switches.

#include <cstdio>

#include "nextmaint.h"

namespace {

using nextmaint::Date;
using nextmaint::core::ColdStartOptions;
using nextmaint::core::VehicleCategory;

int Run() {
  const double t_v = 2'000'000.0;
  const Date start = Date::FromYmd(2015, 1, 1).ValueOrDie();

  // An established fleet provides the training corpus of first cycles.
  nextmaint::telem::FleetOptions fleet_options;
  fleet_options.num_vehicles = 10;
  fleet_options.num_days = 1000;
  fleet_options.maintenance_interval_s = t_v;
  fleet_options.start_date = start;
  fleet_options.seed = 31;
  const auto fleet =
      nextmaint::telem::SimulateFleet(fleet_options).ValueOrDie();

  ColdStartOptions cold_options;
  cold_options.window = 0;
  std::vector<nextmaint::core::FirstCycleData> corpus;
  for (const auto& vehicle : fleet.vehicles) {
    auto data = nextmaint::core::ExtractFirstCycle(
        vehicle.profile.id, vehicle.utilization, t_v, cold_options);
    if (data.ok()) corpus.push_back(std::move(data).ValueOrDie());
  }
  std::printf("training corpus: %zu first cycles from the old fleet\n",
              corpus.size());

  // The newcomer: simulate its true future so we can score the predictions.
  nextmaint::Rng rng(77);
  auto profiles = nextmaint::telem::DefaultFleetProfiles(5, &rng);
  nextmaint::telem::VehicleProfile newcomer = profiles[0];
  newcomer.id = "newcomer";
  newcomer.maintenance_interval_s = t_v;
  nextmaint::Rng sim_rng(78);
  const auto truth = nextmaint::telem::SimulateVehicle(
                         newcomer, start, 900, 0.0, &sim_rng)
                         .ValueOrDie();
  const auto truth_series =
      nextmaint::core::DeriveSeries(truth.utilization, t_v).ValueOrDie();
  if (truth_series.completed_cycles() == 0) {
    std::fprintf(stderr, "newcomer never completed a cycle; rerun\n");
    return 1;
  }
  const size_t first_maintenance = truth_series.cycles[0].end;
  std::printf("ground truth: first maintenance on day %zu\n\n",
              first_maintenance);

  // Unified model, usable from day one.
  auto uni = nextmaint::core::TrainUnifiedModel("XGB", corpus, cold_options)
                 .ValueOrDie();

  // Walk through the newcomer's first year, predicting as data accrues.
  std::printf("%-6s %-10s %-22s %10s %10s %8s\n", "day", "category",
              "model", "predicted", "actual", "error");
  nextmaint::core::DatasetOptions feature_options;
  feature_options.window = cold_options.window;
  for (size_t day = 30; day <= first_maintenance; day += 30) {
    const nextmaint::data::DailySeries seen =
        truth.utilization.Slice(0, day + 1);
    const VehicleCategory category =
        nextmaint::core::CategorizeUsage(seen, t_v).ValueOrDie();

    // Choose the model per the Section 4.4 decision rule.
    std::string model_label;
    const nextmaint::ml::Regressor* model = nullptr;
    std::unique_ptr<nextmaint::ml::Regressor> sim_model;
    if (category == VehicleCategory::kSemiNew) {
      auto first_half = nextmaint::core::FirstHalfCycleUsage(seen, t_v);
      if (first_half.ok()) {
        auto sim = nextmaint::core::TrainSimilarityModel(
            "RF", first_half.ValueOrDie(), corpus, cold_options);
        if (sim.ok()) {
          auto value = std::move(sim).ValueOrDie();
          sim_model = std::move(value.model);
          model = sim_model.get();
          model_label = "RF_Sim(" + value.match.id + ")";
        }
      }
    }
    if (model == nullptr) {
      model = uni.get();
      model_label = "XGB_Uni";
    }

    // Features for "today" come from the truth-derived series (same cycle
    // phase as the observed prefix).
    auto row =
        nextmaint::core::BuildFeatureRow(truth_series, day, feature_options);
    if (!row.ok()) continue;
    auto prediction = model->Predict(std::span<const double>(
        row.ValueOrDie().data(), row.ValueOrDie().size()));
    if (!prediction.ok()) continue;

    const double actual = truth_series.d[day];
    std::printf("%-6zu %-10s %-22s %10.1f %10.0f %8.1f\n", day,
                nextmaint::core::VehicleCategoryName(category),
                model_label.c_str(), prediction.ValueOrDie(), actual,
                std::fabs(prediction.ValueOrDie() - actual));
  }

  std::printf(
      "\nAs the vehicle crosses T_v/2 of usage it switches from the "
      "unified model to the similarity model, and prediction errors "
      "shrink as the deadline approaches.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
