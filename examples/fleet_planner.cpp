// Fleet maintenance planner: the scenario the paper's introduction
// motivates. A fleet manager oversees heterogeneous construction vehicles
// and wants a maintenance calendar — which machines must be serviced in the
// next 30/60/90 days — driven by per-vehicle ML predictions instead of
// fixed-interval scheduling.
//
// This example:
//   1. simulates a 12-vehicle fleet over ~3 years;
//   2. trains the scheduler (per-vehicle model selection for old vehicles,
//      similarity/unified models for younger ones);
//   3. prints a maintenance calendar grouped by urgency bucket;
//   4. compares the ML plan against the naive fixed-average plan (BL) and
//      reports how many vehicle-days of scheduling slack the ML plan saves.

#include <cstdio>
#include <map>

#include "nextmaint.h"

namespace {

using nextmaint::Date;

int Run() {
  const double t_v = 2'000'000.0;

  // --- Simulate the fleet. -----------------------------------------------
  nextmaint::telem::FleetOptions fleet_options;
  fleet_options.num_vehicles = 12;
  fleet_options.num_days = 1100;
  fleet_options.maintenance_interval_s = t_v;
  fleet_options.start_date = Date::FromYmd(2015, 1, 1).ValueOrDie();
  fleet_options.seed = 2025;
  auto fleet_result = nextmaint::telem::SimulateFleet(fleet_options);
  if (!fleet_result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 fleet_result.status().ToString().c_str());
    return 1;
  }
  const auto fleet = std::move(fleet_result).ValueOrDie();
  const Date today =
      fleet_options.start_date.AddDays(fleet_options.num_days - 1);
  std::printf("fleet of %zu vehicles, data through %s\n",
              fleet.vehicles.size(), today.ToString().c_str());

  // --- Train the scheduler. ----------------------------------------------
  nextmaint::core::SchedulerOptions options;
  options.maintenance_interval_s = t_v;
  options.window = 6;
  options.algorithms = {"BL", "LR", "RF"};
  options.unified_algorithm = "XGB";
  options.selection.tune = false;
  options.selection.train_on_last29_only = true;
  options.selection.resampling_shifts = 2;
  nextmaint::core::FleetScheduler scheduler(options);
  for (const auto& vehicle : fleet.vehicles) {
    auto status =
        scheduler.RegisterVehicle(vehicle.profile.id, fleet.start_date);
    if (status.ok()) {
      status = scheduler.IngestSeries(vehicle.profile.id,
                                      vehicle.utilization);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", vehicle.profile.id.c_str(),
                   status.ToString().c_str());
      return 1;
    }
  }
  if (auto status = scheduler.TrainAll(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // --- Maintenance calendar by urgency bucket. ---------------------------
  auto forecasts_result = scheduler.FleetForecast();
  if (!forecasts_result.ok()) {
    std::fprintf(stderr, "forecast failed: %s\n",
                 forecasts_result.status().ToString().c_str());
    return 1;
  }
  const auto forecasts = std::move(forecasts_result).ValueOrDie();

  const std::map<int, const char*> buckets = {
      {30, "URGENT   (<= 30 days)"},
      {60, "SOON     (31-60 days)"},
      {90, "PLANNED  (61-90 days)"},
      {100000, "LATER    (> 90 days)"}};
  for (const auto& [limit, label] : buckets) {
    std::printf("\n%s\n", label);
    bool any = false;
    for (const auto& f : forecasts) {
      const double days = f.days_left;
      const bool in_bucket =
          limit == 30 ? days <= 30
                      : (days > limit - 30 && days <= limit) ||
                            (limit == 100000 && days > 90);
      if (!in_bucket) continue;
      any = true;
      std::printf("  %-5s %-16s due %s (%5.1f days, %8.0f s left, %s)\n",
                  f.vehicle_id.c_str(), f.model_name.c_str(),
                  f.predicted_date.ToString().c_str(), f.days_left,
                  f.usage_seconds_left,
                  nextmaint::core::VehicleCategoryName(f.category));
    }
    if (!any) std::printf("  (none)\n");
  }

  // --- Compare against the naive fixed-average plan. ----------------------
  // For each vehicle compute the BL date (L / lifetime-average usage) and
  // report the spread between the two plans: large gaps are exactly the
  // vehicles whose recent usage deviates from their historical average.
  std::printf("\nML plan vs naive average plan\n");
  std::printf("%-5s %12s %12s %10s\n", "id", "ML days", "naive days",
              "gap");
  double total_gap = 0.0;
  for (const auto& f : forecasts) {
    const auto* vehicle = fleet.Find(f.vehicle_id).ValueOrDie();
    auto avg = nextmaint::core::AverageUtilization(vehicle->utilization);
    if (!avg.ok()) continue;
    const double naive_days = f.usage_seconds_left / avg.ValueOrDie();
    const double gap = std::fabs(naive_days - f.days_left);
    total_gap += gap;
    std::printf("%-5s %12.1f %12.1f %10.1f\n", f.vehicle_id.c_str(),
                f.days_left, naive_days, gap);
  }
  std::printf(
      "\ntotal scheduling disagreement: %.0f vehicle-days — each of these "
      "is a day the naive plan would service too early (wasted downtime) "
      "or too late (overrun risk).\n",
      total_gap);

  // --- Book concrete workshop slots under capacity constraints. ----------
  nextmaint::core::WorkshopOptions workshop;
  workshop.daily_capacity = 1;
  workshop.horizon_days = 120;
  auto plan_result =
      nextmaint::core::PlanWorkshop(forecasts, today.AddDays(1), workshop);
  if (!plan_result.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan_result.status().ToString().c_str());
    return 1;
  }
  const auto plan = std::move(plan_result).ValueOrDie();
  std::printf("\nworkshop bookings (capacity %d/day, weekdays only)\n",
              workshop.daily_capacity);
  std::printf("%-12s %-6s %12s %7s\n", "slot", "id", "due", "slack");
  for (const auto& booking : plan.assignments) {
    std::printf("%-12s %-6s %12s %+7ld\n",
                booking.scheduled_date.ToString().c_str(),
                booking.vehicle_id.c_str(),
                booking.predicted_due_date.ToString().c_str(),
                static_cast<long>(booking.slack_days));
  }
  std::printf("plan cost %.1f (early %ld days, late %ld days, %zu beyond "
              "horizon)\n",
              plan.total_cost, static_cast<long>(plan.total_early_days),
              static_cast<long>(plan.total_late_days),
              plan.beyond_horizon.size());
  return 0;
}

}  // namespace

int main() { return Run(); }
