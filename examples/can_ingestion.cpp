// CAN-bus ingestion walkthrough: the telematics substrate end to end at
// message granularity, the way the production system described in
// Section 3 operates:
//
//   on-board sensors -> CAN frames -> controller summary reports ->
//   cloud collector -> daily aggregation -> cleaning -> CSV extract.
//
// Run it to see one week of raw traffic reduced to the daily utilization
// series the predictive models consume.

#include <cstdio>
#include <sstream>

#include "nextmaint.h"

namespace {

using nextmaint::Date;

int Run() {
  nextmaint::Rng rng(12345);
  const Date monday = Date::FromYmd(2015, 6, 1).ValueOrDie();

  // One week of target utilization: a busy Mon-Fri, idle weekend.
  const double weekly_targets[] = {28'000, 30'500, 0,     26'000,
                                   31'000, 0,      4'500};

  nextmaint::telem::ControllerOptions controller_options;
  controller_options.frequency_hz = 5.0;  // demo rate; production is ~100 Hz
  controller_options.report_period_s = 3'600.0;

  nextmaint::telem::ReportCollector collector;
  size_t total_frames = 0;
  for (int day = 0; day < 7; ++day) {
    nextmaint::telem::CanDayOptions can_options;
    can_options.frequency_hz = controller_options.frequency_hz;
    can_options.working_seconds = weekly_targets[day];
    auto frames_result = nextmaint::telem::SimulateCanDay(can_options, &rng);
    if (!frames_result.ok()) {
      std::fprintf(stderr, "frame simulation failed: %s\n",
                   frames_result.status().ToString().c_str());
      return 1;
    }
    const auto frames = std::move(frames_result).ValueOrDie();
    total_frames += frames.size();

    auto reports_result = nextmaint::telem::SummarizeDay(
        "demo-excavator", monday.AddDays(day), frames, controller_options);
    if (!reports_result.ok()) {
      std::fprintf(stderr, "controller failed: %s\n",
                   reports_result.status().ToString().c_str());
      return 1;
    }
    const auto reports = std::move(reports_result).ValueOrDie();
    std::printf("%s: %8zu frames -> %2zu summary reports\n",
                monday.AddDays(day).ToString().c_str(), frames.size(),
                reports.size());
    collector.Ingest(reports);
  }
  std::printf("total CAN frames this week: %zu\n\n", total_frames);

  // Inspect a few summary reports for the first day.
  const auto table = collector.ReportsTable("demo-excavator").ValueOrDie();
  std::printf("first summary reports (of %zu):\n", table.num_rows());
  std::printf("%-12s %10s %10s %9s %9s %9s\n", "date", "window", "work s",
              "rpm", "temp C", "oil kPa");
  for (size_t row = 0; row < std::min<size_t>(5, table.num_rows()); ++row) {
    std::printf("%-12s %10.0f %10.1f %9.0f %9.1f %9.0f\n",
                table.column(0).StringAt(row).c_str(),
                table.column(1).DoubleAt(row),
                table.column(2).DoubleAt(row),
                table.column(3).DoubleAt(row),
                table.column(4).DoubleAt(row),
                table.column(5).DoubleAt(row));
  }

  // Aggregate to the daily series and clean it (days with no traffic are
  // absent from the report stream and must become zero-usage days).
  auto series_result = collector.DailyUtilization("demo-excavator");
  if (!series_result.ok()) {
    std::fprintf(stderr, "aggregation failed: %s\n",
                 series_result.status().ToString().c_str());
    return 1;
  }
  nextmaint::data::DailySeries series =
      std::move(series_result).ValueOrDie();
  const nextmaint::data::CleaningReport cleaning =
      nextmaint::data::Clean(&series,
                             nextmaint::data::MissingValuePolicy::kZero);

  std::printf("\ndaily utilization after aggregation + cleaning "
              "(%zu missing days filled):\n",
              cleaning.missing_filled);
  std::printf("%-12s %12s %12s\n", "date", "measured s", "target s");
  for (size_t i = 0; i < series.size(); ++i) {
    const int day_offset = static_cast<int>(
        series.start_date().DaysSince(monday)) + static_cast<int>(i);
    std::printf("%-12s %12.1f %12.0f\n",
                series.start_date().AddDays(static_cast<int64_t>(i))
                    .ToString()
                    .c_str(),
                series[i], weekly_targets[day_offset]);
  }

  // Export the prepared series as the CSV extract the modelling side uses.
  const auto csv_table =
      nextmaint::data::SeriesToTable(series, "utilization_s").ValueOrDie();
  std::ostringstream csv;
  if (auto status = nextmaint::data::WriteCsv(csv_table, csv);
      !status.ok()) {
    std::fprintf(stderr, "CSV export failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nCSV extract:\n%s", csv.str().c_str());
  return 0;
}

}  // namespace

int main() { return Run(); }
