// Quickstart: simulate a small fleet, inspect the derived series, train the
// paper's models on one old vehicle and compare their errors, then run the
// fleet scheduler to get next-maintenance forecasts.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "nextmaint.h"

namespace {

using nextmaint::Date;
using nextmaint::core::DaySet;
using nextmaint::core::OldVehicleOptions;
using nextmaint::core::VehicleEvaluation;

int Run() {
  // --- 1. Simulate a fleet (the stand-in for real telematics data). ------
  nextmaint::telem::FleetOptions fleet_options;
  fleet_options.num_vehicles = 6;
  fleet_options.num_days = 1200;
  fleet_options.start_date = Date::FromYmd(2015, 1, 1).ValueOrDie();
  fleet_options.seed = 7;

  auto fleet_result = nextmaint::telem::SimulateFleet(fleet_options);
  if (!fleet_result.ok()) {
    std::fprintf(stderr, "fleet simulation failed: %s\n",
                 fleet_result.status().ToString().c_str());
    return 1;
  }
  const nextmaint::telem::Fleet fleet = std::move(fleet_result).ValueOrDie();

  // --- 2. Derive the problem series for the first vehicle. ---------------
  const auto& vehicle = fleet.vehicles[0];
  auto series_result = nextmaint::core::DeriveSeries(
      vehicle.utilization, fleet_options.maintenance_interval_s);
  if (!series_result.ok()) {
    std::fprintf(stderr, "series derivation failed: %s\n",
                 series_result.status().ToString().c_str());
    return 1;
  }
  const nextmaint::core::VehicleSeries series =
      std::move(series_result).ValueOrDie();

  std::printf("vehicle %s (%s)\n", vehicle.profile.id.c_str(),
              vehicle.profile.model_name.c_str());
  std::printf("  days of data     : %zu\n", series.size());
  std::printf("  mean daily usage : %.0f s\n", series.u.MeanValue());
  std::printf("  completed cycles : %zu\n", series.completed_cycles());
  for (size_t i = 0; i < std::min<size_t>(series.cycles.size(), 5); ++i) {
    std::printf("    cycle %zu: days %zu..%zu (%zu days)\n", i + 1,
                series.cycles[i].start, series.cycles[i].end,
                series.cycles[i].length_days());
  }

  // --- 3. Evaluate the paper's algorithms on this (old) vehicle. ---------
  OldVehicleOptions options;
  options.window = 6;
  options.train_on_last29_only = true;
  options.resampling_shifts = 2;
  options.tune = false;  // defaults keep the quickstart fast

  std::printf("\n%-6s %12s %12s %12s\n", "model", "E_MRE(1..29)", "E_Global",
              "train (s)");
  for (const std::string& name :
       {std::string("BL"), std::string("LR"), std::string("LSVR"),
        std::string("RF"), std::string("XGB")}) {
    auto eval_result = nextmaint::core::EvaluateAlgorithmOnVehicle(
        name, vehicle.utilization, fleet_options.maintenance_interval_s,
        options);
    if (!eval_result.ok()) {
      std::printf("%-6s evaluation failed: %s\n", name.c_str(),
                  eval_result.status().ToString().c_str());
      continue;
    }
    const VehicleEvaluation eval = std::move(eval_result).ValueOrDie();
    std::printf("%-6s %12.2f %12.2f %12.2f\n", name.c_str(), eval.emre,
                eval.eglobal, eval.train_seconds);
  }

  // --- 4. What drives the predictions? RF feature importances. ------------
  {
    nextmaint::core::OldVehicleOptions rf_options = options;
    auto rf_eval = nextmaint::core::EvaluateAlgorithmOnVehicle(
        "RF", vehicle.utilization, fleet_options.maintenance_interval_s,
        rf_options);
    if (rf_eval.ok()) {
      const auto* forest = dynamic_cast<const nextmaint::ml::RandomForestRegressor*>(
          rf_eval.ValueOrDie().model.get());
      if (forest != nullptr) {
        const std::vector<double> importances = forest->FeatureImportances();
        std::printf("\nRF feature importances: L=%.2f", importances[0]);
        for (size_t i = 1; i < importances.size(); ++i) {
          std::printf("  U(t-%zu)=%.2f", i, importances[i]);
        }
        std::printf("\n");
      }
    }
  }

  // --- 5. Fleet-level forecasts through the deployed-system facade. ------
  nextmaint::core::SchedulerOptions scheduler_options;
  scheduler_options.window = 6;
  scheduler_options.selection.tune = false;
  nextmaint::core::FleetScheduler scheduler(scheduler_options);
  for (const auto& v : fleet.vehicles) {
    auto status = scheduler.RegisterVehicle(v.profile.id, fleet.start_date);
    if (status.ok()) {
      status = scheduler.IngestSeries(v.profile.id, v.utilization);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "ingestion failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  auto train_status = scheduler.TrainAll();
  if (!train_status.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 train_status.ToString().c_str());
    return 1;
  }
  auto forecasts = scheduler.FleetForecast();
  if (!forecasts.ok()) {
    std::fprintf(stderr, "forecast failed: %s\n",
                 forecasts.status().ToString().c_str());
    return 1;
  }
  std::printf("\nfleet forecast (most urgent first)\n");
  std::printf("%-5s %-10s %-16s %10s %12s\n", "id", "category", "model",
              "days left", "date");
  for (const auto& f : forecasts.ValueOrDie()) {
    std::printf("%-5s %-10s %-16s %10.1f %12s\n", f.vehicle_id.c_str(),
                nextmaint::core::VehicleCategoryName(f.category),
                f.model_name.c_str(), f.days_left,
                f.predicted_date.ToString().c_str());
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
